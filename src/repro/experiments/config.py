"""Experiment configuration dataclasses.

The configuration mirrors the paper's experimental platform (§IV): one
load balancer, twelve application servers with 2 cores and 32 Apache
workers each, a TCP backlog of 128 with abort-on-overflow, and the two
workloads of §V and §VI.  Every parameter is a field so that ablation
benchmarks and downstream users can deviate from the paper's setup
explicitly and visibly.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.errors import ExperimentError

#: The 24 load factors swept by the paper's Figure 2 (evenly spaced in (0, 1)).
PAPER_LOAD_FACTORS: Tuple[float, ...] = tuple(
    round(0.04 * step, 2) for step in range(1, 25)
)

#: The two load factors highlighted by Figures 3-5.
HIGH_LOAD_FACTOR = 0.88
LIGHT_LOAD_FACTOR = 0.61


@dataclass(frozen=True)
class TestbedConfig:
    """Static description of the simulated testbed."""

    # Not a test class, despite the name (keeps pytest collection quiet).
    __test__ = False

    num_servers: int = 12
    workers_per_server: int = 32
    cores_per_server: int = 2
    backlog_capacity: int = 128
    abort_on_overflow: bool = True
    cpu_model: str = "processor-sharing"
    fabric_latency: float = 50e-6
    flow_idle_timeout: float = 60.0
    #: Size of the SRLB tier.  1 (the paper's platform) deploys a single
    #: load balancer advertising the VIP itself; 2+ deploys a
    #: :class:`~repro.core.lb_tier.LoadBalancerTier` behind an ECMP edge
    #: router, which is what the resilience experiments exercise.
    num_load_balancers: int = 1
    #: Flow-to-instance mapping of the ECMP edge (tier deployments only):
    #: ``"rendezvous"`` (consistent) or ``"modulo"`` (naive).
    ecmp_hash: str = "rendezvous"
    #: When positive, clients trickle each request upload over this many
    #: seconds (in ``request_chunks`` paced segments), stretching the
    #: window during which a flow depends on load-balancer steering
    #: state.  The resilience experiments use this to model long-lived
    #: flows; 0 keeps the paper's send-at-once behaviour.
    request_spread: float = 0.0
    request_chunks: int = 1
    #: Server-side ``RequestReadTimeout`` in seconds (0 disables it):
    #: a worker whose connection never delivers its request payload is
    #: reset after this long.  Long-lived-flow scenarios (request_spread
    #: > 0) need it so abandoned flows do not pin workers forever.
    request_timeout: float = 0.0
    #: Per-server CPU speed multipliers for heterogeneous fleets: server
    #: ``i`` executes CPU demand at ``server_speed_factors[i]`` times the
    #: nominal rate.  Empty (the default) means a homogeneous fleet at
    #: speed 1.0, the paper's platform.  When non-empty the tuple must
    #: name every server.
    server_speed_factors: Tuple[float, ...] = ()
    #: Recycle delivered packets through a free list instead of
    #: allocating a fresh :class:`~repro.net.packet.Packet` per send.
    #: Event order, packet ids and every statistic are identical either
    #: way; plain construction stays the reference path.  The default
    #: follows ``REPRO_PACKET_POOLING=1`` so a whole test or benchmark
    #: run can be flipped without touching configs.
    packet_pooling: bool = field(
        default_factory=lambda: os.environ.get("REPRO_PACKET_POOLING", "") == "1"
    )
    #: Client SYN retransmission: initial RTO in seconds (doubles per
    #: retransmit up to the cap, at most ``syn_retransmit_limit`` times).
    #: 0 (the default) disables retransmission — the pre-fault-plane
    #: behaviour, under which every existing golden was pinned.
    syn_retransmit_timeout: float = 0.0
    syn_retransmit_cap: float = 60.0
    syn_retransmit_limit: int = 6
    #: Per-attempt client deadline (0 disables): when it fires, the query
    #: is retried from scratch on a fresh source port, at most
    #: ``max_retries`` times before the client gives up.
    retry_timeout: float = 0.0
    max_retries: int = 0
    #: Server load-shedding high-water mark on the listen backlog (0
    #: disables): SYNs arriving at or above this depth are fast-RST'd
    #: before admission and counted as ``connections_shed``.
    backlog_shed_watermark: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_servers <= 0:
            raise ExperimentError(
                f"num_servers must be positive, got {self.num_servers!r}"
            )
        if self.num_load_balancers <= 0:
            raise ExperimentError(
                f"num_load_balancers must be positive, got {self.num_load_balancers!r}"
            )
        if self.ecmp_hash not in ("rendezvous", "modulo"):
            raise ExperimentError(
                f"ecmp_hash must be 'rendezvous' or 'modulo', got {self.ecmp_hash!r}"
            )
        if self.request_spread < 0:
            raise ExperimentError(
                f"request_spread must be non-negative, got {self.request_spread!r}"
            )
        if self.request_chunks <= 0:
            raise ExperimentError(
                f"request_chunks must be positive, got {self.request_chunks!r}"
            )
        if self.request_timeout < 0:
            raise ExperimentError(
                f"request_timeout must be non-negative, got {self.request_timeout!r}"
            )
        if self.workers_per_server <= 0:
            raise ExperimentError(
                f"workers_per_server must be positive, got {self.workers_per_server!r}"
            )
        if self.cores_per_server <= 0:
            raise ExperimentError(
                f"cores_per_server must be positive, got {self.cores_per_server!r}"
            )
        if self.backlog_capacity <= 0:
            raise ExperimentError(
                f"backlog_capacity must be positive, got {self.backlog_capacity!r}"
            )
        if self.syn_retransmit_timeout < 0:
            raise ExperimentError(
                "syn_retransmit_timeout must be non-negative, got "
                f"{self.syn_retransmit_timeout!r}"
            )
        if self.syn_retransmit_cap <= 0:
            raise ExperimentError(
                "syn_retransmit_cap must be positive, got "
                f"{self.syn_retransmit_cap!r}"
            )
        if self.syn_retransmit_limit < 0:
            raise ExperimentError(
                "syn_retransmit_limit must be non-negative, got "
                f"{self.syn_retransmit_limit!r}"
            )
        if self.retry_timeout < 0:
            raise ExperimentError(
                f"retry_timeout must be non-negative, got {self.retry_timeout!r}"
            )
        if self.max_retries < 0:
            raise ExperimentError(
                f"max_retries must be non-negative, got {self.max_retries!r}"
            )
        if not 0 <= self.backlog_shed_watermark <= self.backlog_capacity:
            raise ExperimentError(
                "backlog_shed_watermark must be in [0, backlog_capacity], got "
                f"{self.backlog_shed_watermark!r} with capacity "
                f"{self.backlog_capacity!r}"
            )
        if self.server_speed_factors:
            if len(self.server_speed_factors) != self.num_servers:
                raise ExperimentError(
                    f"server_speed_factors names {len(self.server_speed_factors)} "
                    f"servers but the fleet has {self.num_servers}"
                )
            for speed in self.server_speed_factors:
                if speed <= 0:
                    raise ExperimentError(
                        f"server speed factors must be positive, got {speed!r}"
                    )

    @property
    def total_cores(self) -> int:
        """Aggregate CPU capacity of the server fleet."""
        return self.num_servers * self.cores_per_server

    def speed_of(self, server_index: int) -> float:
        """CPU speed multiplier of one server (1.0 when homogeneous)."""
        if not self.server_speed_factors:
            return 1.0
        return self.server_speed_factors[server_index]

    @property
    def total_capacity(self) -> float:
        """Aggregate speed-weighted core capacity of the fleet.

        Equal to :attr:`total_cores` for homogeneous fleets; the
        saturation-rate calibration uses this so heterogeneous fleets
        normalise load factors against their true capacity.
        """
        if not self.server_speed_factors:
            return float(self.total_cores)
        return float(
            sum(self.cores_per_server * speed for speed in self.server_speed_factors)
        )

    @property
    def total_workers(self) -> int:
        """Aggregate worker-pool size of the server fleet."""
        return self.num_servers * self.workers_per_server

    def with_seed(self, seed: int) -> "TestbedConfig":
        """Copy of this configuration with a different RNG seed."""
        return replace(self, seed=seed)


@dataclass(frozen=True)
class PolicySpec:
    """A named load-balancing configuration (selection + acceptance).

    The paper's configurations:

    * ``RR`` — one random candidate, no Service Hunting choice (the
      baseline random load balancer);
    * ``SR4`` / ``SR8`` / ``SR16`` — two random candidates, static
      acceptance threshold c;
    * ``SRdyn`` — two random candidates, dynamic threshold.
    """

    name: str
    acceptance_policy: str
    num_candidates: int = 2
    selector: str = "random"

    def __post_init__(self) -> None:
        if not self.name:
            raise ExperimentError("policy spec needs a name")
        if self.num_candidates <= 0:
            raise ExperimentError(
                f"num_candidates must be positive, got {self.num_candidates!r}"
            )


def rr_policy() -> PolicySpec:
    """The paper's RR baseline: one random server, always accepted."""
    return PolicySpec(name="RR", acceptance_policy="always", num_candidates=1)


def sr_policy(threshold: int, num_candidates: int = 2) -> PolicySpec:
    """A static ``SRc`` configuration with the given threshold."""
    if threshold < 0:
        raise ExperimentError(f"threshold must be >= 0, got {threshold!r}")
    return PolicySpec(
        name=f"SR{threshold}",
        acceptance_policy=f"SR{threshold}",
        num_candidates=num_candidates,
    )


def srdyn_policy(num_candidates: int = 2) -> PolicySpec:
    """The dynamic ``SRdyn`` configuration."""
    return PolicySpec(
        name="SRdyn", acceptance_policy="SRdyn", num_candidates=num_candidates
    )


def paper_policy_suite() -> List[PolicySpec]:
    """The five configurations compared throughout the paper's evaluation."""
    return [rr_policy(), sr_policy(4), sr_policy(8), sr_policy(16), srdyn_policy()]


@dataclass(frozen=True)
class PoissonSweepConfig:
    """Configuration of the Poisson-workload experiments (Figures 2–5)."""

    testbed: TestbedConfig = field(default_factory=TestbedConfig)
    load_factors: Tuple[float, ...] = PAPER_LOAD_FACTORS
    num_queries: int = 20_000
    service_mean: float = 0.1
    policies: Tuple[PolicySpec, ...] = field(
        default_factory=lambda: tuple(paper_policy_suite())
    )
    saturation_rate: Optional[float] = None
    load_sample_interval: float = 0.5
    workload_seed: int = 12_345

    def __post_init__(self) -> None:
        if not self.load_factors:
            raise ExperimentError("at least one load factor is required")
        for load_factor in self.load_factors:
            if not 0 < load_factor:
                raise ExperimentError(
                    f"load factors must be positive, got {load_factor!r}"
                )
        if self.num_queries <= 0:
            raise ExperimentError(
                f"num_queries must be positive, got {self.num_queries!r}"
            )
        if self.service_mean <= 0:
            raise ExperimentError(
                f"service_mean must be positive, got {self.service_mean!r}"
            )
        if not self.policies:
            raise ExperimentError("at least one policy is required")

    def scaled(self, num_queries: int, load_factors: Optional[Sequence[float]] = None) -> "PoissonSweepConfig":
        """A cheaper copy of the configuration (for benchmarks and CI)."""
        return replace(
            self,
            num_queries=num_queries,
            load_factors=tuple(load_factors) if load_factors is not None else self.load_factors,
        )


@dataclass(frozen=True)
class WikipediaReplayConfig:
    """Configuration of the Wikipedia-replay experiments (Figures 6–8)."""

    testbed: TestbedConfig = field(default_factory=TestbedConfig)
    duration: float = 86_400.0
    replay_fraction: float = 0.5
    static_per_wiki: float = 1.0
    bin_width: float = 600.0
    policies: Tuple[PolicySpec, ...] = field(
        default_factory=lambda: (rr_policy(), sr_policy(4))
    )
    mean_wiki_rate: float = 85.0
    wiki_rate_amplitude: float = 30.0
    trough_hour: float = 8.0
    workload_seed: int = 54_321

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ExperimentError(f"duration must be positive, got {self.duration!r}")
        if not 0 < self.replay_fraction <= 1:
            raise ExperimentError(
                f"replay_fraction must be in (0, 1], got {self.replay_fraction!r}"
            )
        if self.bin_width <= 0:
            raise ExperimentError(
                f"bin_width must be positive, got {self.bin_width!r}"
            )
        if not self.policies:
            raise ExperimentError("at least one policy is required")

    def compressed(self, duration: float, bin_width: Optional[float] = None) -> "WikipediaReplayConfig":
        """Time-lapse copy: same diurnal shape, shorter wall-clock duration.

        The bin width is scaled proportionally by default so the figures
        keep the same number of bins as the paper's 144 ten-minute bins.
        """
        if bin_width is None:
            bin_width = self.bin_width * duration / self.duration
        return replace(self, duration=duration, bin_width=bin_width)


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change of the load-balancer tier during a run.

    ``at_fraction`` places the event relative to the workload's arrival
    phase (0.5 = halfway through the trace), so the same churn schedule
    is meaningful at any experiment scale.  ``instance`` names the
    instance to kill; ``None`` kills the alive instance with the largest
    flow table — the most steering state at risk (entries are not
    expired during a run, so this is cumulative, not live, state).
    """

    at_fraction: float
    action: str = "kill"
    instance: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0 < self.at_fraction < 1:
            raise ExperimentError(
                f"at_fraction must be in (0, 1), got {self.at_fraction!r}"
            )
        if self.action not in ("kill", "add"):
            raise ExperimentError(
                f"churn action must be 'kill' or 'add', got {self.action!r}"
            )


@dataclass(frozen=True)
class ResilienceConfig:
    """Configuration of the LB-churn resilience experiments.

    The experiment replays the same Poisson workload against a
    load-balancer *tier* under each candidate-selection scheme, applies
    the churn schedule mid-run, and measures how many in-flight flows
    break — the paper's §II-B resiliency claim, quantified.
    """

    testbed: TestbedConfig = field(
        default_factory=lambda: TestbedConfig(
            num_load_balancers=4,
            # Spread uploads keep flows steering-dependent for ~2 s, so
            # mid-run churn has in-flight flows to break; the read
            # timeout frees workers pinned by flows the churn broke.
            request_spread=2.0,
            request_chunks=5,
            request_timeout=5.0,
        )
    )
    load_factor: float = 0.6
    num_queries: int = 6_000
    service_mean: float = 0.1
    acceptance_policy: str = "SR8"
    num_candidates: int = 2
    selection_schemes: Tuple[str, ...] = ("random", "consistent-hash")
    churn: Tuple[ChurnEvent, ...] = (ChurnEvent(at_fraction=0.5),)
    workload_seed: int = 2_024

    def __post_init__(self) -> None:
        if self.testbed.num_load_balancers < 2:
            raise ExperimentError(
                "resilience experiments need a tier of at least 2 load "
                f"balancers, got {self.testbed.num_load_balancers!r}"
            )
        if not 0 < self.load_factor:
            raise ExperimentError(
                f"load_factor must be positive, got {self.load_factor!r}"
            )
        if self.num_queries <= 0:
            raise ExperimentError(
                f"num_queries must be positive, got {self.num_queries!r}"
            )
        if not self.selection_schemes:
            raise ExperimentError("at least one selection scheme is required")
        # Reject schedules that would kill the whole tier before the
        # simulation wastes minutes discovering it mid-run.
        alive = self.testbed.num_load_balancers
        for event in sorted(self.churn, key=lambda event: event.at_fraction):
            alive += 1 if event.action == "add" else -1
            if alive < 1:
                raise ExperimentError(
                    "churn schedule kills every load-balancer instance: "
                    f"{self.testbed.num_load_balancers} instances cannot "
                    f"absorb {len(self.churn)} events ending below 1 alive"
                )

    def scaled(self, num_queries: int) -> "ResilienceConfig":
        """A cheaper copy of the configuration (for tests and CI)."""
        return replace(self, num_queries=num_queries)

    def policy_for(self, scheme: str) -> PolicySpec:
        """The :class:`PolicySpec` running the tier under ``scheme``."""
        return PolicySpec(
            name=scheme,
            acceptance_policy=self.acceptance_policy,
            num_candidates=self.num_candidates,
            selector=scheme,
        )


@dataclass(frozen=True)
class FlashCrowdConfig:
    """Configuration of the flash-crowd scenario family.

    The workload is a step schedule of Poisson arrival rates over the
    paper's testbed: a baseline phase, a sudden overload spike (a flash
    crowd arriving), and a recovery phase back at the baseline rate.
    Every policy replays the same trace, so the comparison isolates how
    well the power-of-two-choices policies absorb the sudden overload
    (and how quickly response times drain back down afterwards).
    """

    testbed: TestbedConfig = field(default_factory=TestbedConfig)
    #: Load factors (relative to the analytic saturation rate) of the
    #: three phases.  The spike deliberately exceeds 1.0: the paper's
    #: Service Hunting claim is most interesting when the fleet is
    #: transiently oversubscribed.
    baseline_load: float = 0.5
    spike_load: float = 1.5
    #: Durations of the three phases, in seconds.
    baseline_duration: float = 40.0
    spike_duration: float = 15.0
    recovery_duration: float = 45.0
    service_mean: float = 0.1
    policies: Tuple[PolicySpec, ...] = field(
        default_factory=lambda: (rr_policy(), sr_policy(4), srdyn_policy())
    )
    #: Width of the time bins used by the per-bin figure series.
    bin_width: float = 5.0
    saturation_rate: Optional[float] = None
    workload_seed: int = 77_777

    def __post_init__(self) -> None:
        if self.baseline_load <= 0 or self.spike_load <= 0:
            raise ExperimentError(
                "flash-crowd load factors must be positive, got "
                f"baseline={self.baseline_load!r}, spike={self.spike_load!r}"
            )
        if self.spike_load <= self.baseline_load:
            raise ExperimentError(
                "the spike must exceed the baseline load, got "
                f"baseline={self.baseline_load!r} >= spike={self.spike_load!r}"
            )
        for name, duration in (
            ("baseline_duration", self.baseline_duration),
            ("spike_duration", self.spike_duration),
            ("recovery_duration", self.recovery_duration),
        ):
            if duration <= 0:
                raise ExperimentError(
                    f"{name} must be positive, got {duration!r}"
                )
        if self.service_mean <= 0:
            raise ExperimentError(
                f"service_mean must be positive, got {self.service_mean!r}"
            )
        if self.bin_width <= 0:
            raise ExperimentError(
                f"bin_width must be positive, got {self.bin_width!r}"
            )
        if not self.policies:
            raise ExperimentError("at least one policy is required")

    @property
    def total_duration(self) -> float:
        """Arrival-phase length of the generated trace, in seconds."""
        return self.baseline_duration + self.spike_duration + self.recovery_duration

    @property
    def spike_window(self) -> Tuple[float, float]:
        """``(start, end)`` of the overload phase, in trace time."""
        return (
            self.baseline_duration,
            self.baseline_duration + self.spike_duration,
        )

    def scaled(self, time_factor: float) -> "FlashCrowdConfig":
        """A copy with every phase duration multiplied by ``time_factor``."""
        if time_factor <= 0:
            raise ExperimentError(
                f"time_factor must be positive, got {time_factor!r}"
            )
        return replace(
            self,
            baseline_duration=self.baseline_duration * time_factor,
            spike_duration=self.spike_duration * time_factor,
            recovery_duration=self.recovery_duration * time_factor,
            bin_width=self.bin_width * time_factor,
        )


@dataclass(frozen=True)
class AutoscaleConfig:
    """Configuration of the autoscale scenario family.

    A diurnal (sinusoid-plus-noise) workload is replayed under several
    *provisioning modes* over the same testbed recipe:

    * ``static`` — the fleet is fixed at ``max_servers`` for the whole
      run (classic peak-sized over-provisioning; no control plane);
    * ``reactive`` — the fleet starts at ``min_servers`` and an
      :class:`~repro.control.autoscaler.Autoscaler` with the reactive
      threshold policy grows/shrinks it;
    * ``predictive`` — same, with the EWMA-slope forecasting policy.

    Load factors are normalised against the *maximum* fleet's analytic
    saturation rate, so ``mean_load``/``load_amplitude`` describe what
    fraction of the peak-sized fleet the day consumes; the comparison
    reports cost (capacity-seconds) against SLO (p99 response time).
    """

    # --- testbed recipe (per-server shape; the fleet size is elastic) ---
    workers_per_server: int = 32
    cores_per_server: int = 2
    backlog_capacity: int = 128
    num_load_balancers: int = 1
    min_servers: int = 4
    max_servers: int = 12
    acceptance_policy: str = "SR8"
    num_candidates: int = 2
    selector: str = "random"
    seed: int = 0

    # --- diurnal workload -------------------------------------------------
    #: Day-average load, as a fraction of the max fleet's saturation rate.
    mean_load: float = 0.5
    #: Peak-to-mean load swing (the trough is ``mean_load - load_amplitude``).
    load_amplitude: float = 0.3
    #: Length of one compressed day, in seconds.
    period: float = 240.0
    #: Total schedule length (may cover several periods).
    duration: float = 480.0
    #: Piecewise-constant steps the sinusoid is discretised into.
    num_steps: int = 96
    #: Relative std-dev of the per-step multiplicative rate noise.
    rate_noise: float = 0.05
    service_mean: float = 0.1
    saturation_rate: Optional[float] = None
    workload_seed: int = 424_242

    # --- control plane ----------------------------------------------------
    monitor_interval: float = 1.0
    ewma_time_constant: float = 5.0
    #: Smoothed busy-fraction watermarks of the scaling policies.  Note
    #: the scale: with 32 workers over 2 cores a server saturates its
    #: CPU long before its worker pool, so useful watermarks sit well
    #: below 1 (0.12 of 32 workers ≈ 4 busy threads ≈ ρ ≈ 0.8).
    scale_up_fraction: float = 0.12
    scale_down_fraction: float = 0.04
    #: Asymmetric action cooldowns: short for scale-ups (a climbing ramp
    #: needs servers ordered back-to-back), long for scale-downs (wait
    #: out the signal dilution the previous action caused).
    scale_up_cooldown: float = 4.0
    scale_down_cooldown: float = 15.0
    provisioning_delay: float = 8.0
    warmup_duration: float = 8.0
    warmup_speed: float = 0.5
    drain_check_interval: float = 0.5
    #: Forecast horizon of the predictive policy (≈ provisioning delay
    #: plus warm-up, so capacity lands when the forecast said so).
    prediction_horizon: float = 20.0
    #: τ of the predictive policy's slope EWMA — a control-plane clock
    #: like the others, so :meth:`scaled` compresses it too.
    slope_time_constant: float = 10.0

    # --- evaluation -------------------------------------------------------
    #: The p99 response-time SLO the comparison is judged against.
    slo_p99: float = 1.5
    modes: Tuple[str, ...] = ("static", "reactive", "predictive")

    def __post_init__(self) -> None:
        if self.min_servers < 1:
            raise ExperimentError(
                f"min_servers must be at least 1, got {self.min_servers!r}"
            )
        if self.max_servers < self.min_servers:
            raise ExperimentError(
                f"max_servers ({self.max_servers!r}) must be >= min_servers "
                f"({self.min_servers!r})"
            )
        if self.min_servers < self.num_candidates:
            # Candidate selection needs num_candidates distinct servers;
            # an elastic fleet scaled to its floor must still satisfy it,
            # so reject the config instead of crashing mid-run.
            raise ExperimentError(
                f"min_servers ({self.min_servers!r}) must be >= num_candidates "
                f"({self.num_candidates!r}): the scaled-down fleet must still "
                "support candidate selection"
            )
        if self.mean_load <= 0:
            raise ExperimentError(
                f"mean_load must be positive, got {self.mean_load!r}"
            )
        if not 0 <= self.load_amplitude <= self.mean_load:
            raise ExperimentError(
                f"load_amplitude must be in [0, mean_load], got "
                f"{self.load_amplitude!r} (mean_load {self.mean_load!r})"
            )
        if self.mean_load + self.load_amplitude > 1.0:
            raise ExperimentError(
                "the diurnal peak exceeds the maximum fleet's capacity: "
                f"mean_load + load_amplitude = "
                f"{self.mean_load + self.load_amplitude!r} > 1.0"
            )
        for name, value in (
            ("period", self.period),
            ("duration", self.duration),
            ("service_mean", self.service_mean),
            ("monitor_interval", self.monitor_interval),
            ("ewma_time_constant", self.ewma_time_constant),
            ("drain_check_interval", self.drain_check_interval),
            ("prediction_horizon", self.prediction_horizon),
            ("slope_time_constant", self.slope_time_constant),
            ("slo_p99", self.slo_p99),
        ):
            # Finiteness matters as much as the sign: an overflowed
            # time factor (duration=inf) would make the diurnal trace
            # generator draw arrivals forever.
            if not math.isfinite(value) or value <= 0:
                raise ExperimentError(
                    f"{name} must be positive and finite, got {value!r}"
                )
        if self.num_steps <= 0:
            raise ExperimentError(
                f"num_steps must be positive, got {self.num_steps!r}"
            )
        if self.rate_noise < 0:
            raise ExperimentError(
                f"rate_noise must be non-negative, got {self.rate_noise!r}"
            )
        if not 0 <= self.scale_down_fraction < self.scale_up_fraction <= 1:
            raise ExperimentError(
                "scaling watermarks must satisfy 0 <= down < up <= 1, got "
                f"down={self.scale_down_fraction!r} up={self.scale_up_fraction!r}"
            )
        for name, value in (
            ("scale_up_cooldown", self.scale_up_cooldown),
            ("scale_down_cooldown", self.scale_down_cooldown),
            ("provisioning_delay", self.provisioning_delay),
            ("warmup_duration", self.warmup_duration),
        ):
            if not math.isfinite(value) or value < 0:
                raise ExperimentError(
                    f"{name} must be non-negative and finite, got {value!r}"
                )
        if not 0 < self.warmup_speed <= 1:
            raise ExperimentError(
                f"warmup_speed must be in (0, 1], got {self.warmup_speed!r}"
            )
        if not self.modes:
            raise ExperimentError("at least one provisioning mode is required")
        for mode in self.modes:
            if mode not in ("static", "reactive", "predictive"):
                raise ExperimentError(
                    f"unknown provisioning mode {mode!r}: expected static, "
                    "reactive or predictive"
                )

    def initial_servers(self, mode: str) -> int:
        """Fleet size a mode starts with (static runs peak-sized)."""
        return self.max_servers if mode == "static" else self.min_servers

    def testbed_for(self, mode: str) -> TestbedConfig:
        """The testbed one provisioning mode starts from."""
        return TestbedConfig(
            num_servers=self.initial_servers(mode),
            workers_per_server=self.workers_per_server,
            cores_per_server=self.cores_per_server,
            backlog_capacity=self.backlog_capacity,
            num_load_balancers=self.num_load_balancers,
            seed=self.seed,
        )

    @property
    def max_testbed(self) -> TestbedConfig:
        """The peak-sized testbed load factors are normalised against."""
        return self.testbed_for("static")

    @property
    def policy(self) -> PolicySpec:
        """The Service Hunting policy every mode runs the fleet under."""
        return PolicySpec(
            name=self.acceptance_policy,
            acceptance_policy=self.acceptance_policy,
            num_candidates=self.num_candidates,
            selector=self.selector,
        )

    def scaled(self, time_factor: float) -> "AutoscaleConfig":
        """A copy with the whole day (and control-plane clocks) compressed."""
        if time_factor <= 0:
            raise ExperimentError(
                f"time_factor must be positive, got {time_factor!r}"
            )
        return replace(
            self,
            period=self.period * time_factor,
            duration=self.duration * time_factor,
            monitor_interval=self.monitor_interval * time_factor,
            ewma_time_constant=self.ewma_time_constant * time_factor,
            scale_up_cooldown=self.scale_up_cooldown * time_factor,
            scale_down_cooldown=self.scale_down_cooldown * time_factor,
            provisioning_delay=self.provisioning_delay * time_factor,
            warmup_duration=self.warmup_duration * time_factor,
            drain_check_interval=self.drain_check_interval * time_factor,
            prediction_horizon=self.prediction_horizon * time_factor,
            slope_time_constant=self.slope_time_constant * time_factor,
        )


@dataclass(frozen=True)
class HeterogeneousFleetConfig:
    """Configuration of the heterogeneous-fleet scenario family.

    The fleet is split into a *fast* tier and a *slow* tier of servers
    whose CPUs run at different speed multipliers (the cores-per-server
    count stays uniform, as does the worker pool).  The same Poisson
    workload — normalised against the fleet's speed-weighted capacity —
    is replayed under each policy; the scenario reports, next to the
    response-time comparison, how each policy shares the accepted
    queries between the tiers relative to the capacity each tier brings.
    This stresses Service Hunting's fairness: busy-thread thresholds see
    queue *length*, not server speed, so slow servers refuse later than
    they should and a bad policy overloads them.
    """

    num_fast: int = 4
    num_slow: int = 8
    fast_speed: float = 2.0
    slow_speed: float = 0.75
    workers_per_server: int = 32
    cores_per_server: int = 2
    backlog_capacity: int = 128
    seed: int = 0
    load_factors: Tuple[float, ...] = (0.85,)
    num_queries: int = 6_000
    service_mean: float = 0.1
    policies: Tuple[PolicySpec, ...] = field(
        default_factory=lambda: (rr_policy(), sr_policy(4), srdyn_policy())
    )
    saturation_rate: Optional[float] = None
    load_sample_interval: float = 0.5
    workload_seed: int = 24_242

    def __post_init__(self) -> None:
        if self.num_fast <= 0 or self.num_slow <= 0:
            raise ExperimentError(
                "a heterogeneous fleet needs both tiers populated, got "
                f"num_fast={self.num_fast!r}, num_slow={self.num_slow!r}"
            )
        if self.fast_speed <= self.slow_speed:
            raise ExperimentError(
                "the fast tier must be faster than the slow tier, got "
                f"fast_speed={self.fast_speed!r} <= slow_speed={self.slow_speed!r}"
            )
        if self.slow_speed <= 0:
            raise ExperimentError(
                f"slow_speed must be positive, got {self.slow_speed!r}"
            )
        if not self.load_factors:
            raise ExperimentError("at least one load factor is required")
        for load_factor in self.load_factors:
            if load_factor <= 0:
                raise ExperimentError(
                    f"load factors must be positive, got {load_factor!r}"
                )
        if self.num_queries <= 0:
            raise ExperimentError(
                f"num_queries must be positive, got {self.num_queries!r}"
            )
        if self.service_mean <= 0:
            raise ExperimentError(
                f"service_mean must be positive, got {self.service_mean!r}"
            )
        if not self.policies:
            raise ExperimentError("at least one policy is required")

    @property
    def num_servers(self) -> int:
        """Total fleet size (fast tier first, then slow tier)."""
        return self.num_fast + self.num_slow

    @property
    def testbed(self) -> TestbedConfig:
        """The mixed-speed testbed described by this configuration."""
        return TestbedConfig(
            num_servers=self.num_servers,
            workers_per_server=self.workers_per_server,
            cores_per_server=self.cores_per_server,
            backlog_capacity=self.backlog_capacity,
            server_speed_factors=(
                (self.fast_speed,) * self.num_fast
                + (self.slow_speed,) * self.num_slow
            ),
            seed=self.seed,
        )

    def fast_server_names(self) -> Tuple[str, ...]:
        """Node names of the fast tier (the builder numbers servers 0..N-1)."""
        return tuple(f"server-{index}" for index in range(self.num_fast))

    def scaled(self, num_queries: int) -> "HeterogeneousFleetConfig":
        """A cheaper copy of the configuration (for tests and CI)."""
        return replace(self, num_queries=num_queries)


@dataclass(frozen=True)
class HeavyTailConfig:
    """Configuration of the heavy-tailed session scenario family.

    A Poisson arrival stream mixes one-shot bounded-Pareto requests with
    keep-alive user sessions (one aggregated request per session whose
    demand sums a geometric-length series of lognormal per-request
    demands).  Arrivals are attributed to a large Zipf-distributed user
    population, and the client derives a stable source port per user so
    flow affinity repeats across sessions.  The same trace is replayed
    under each policy.
    """

    testbed: TestbedConfig = field(default_factory=TestbedConfig)
    load_factor: float = 0.7
    num_arrivals: int = 4_000
    heavy_fraction: float = 0.25
    pareto_alpha: float = 1.5
    pareto_lower: float = 0.02
    pareto_upper: float = 2.5
    request_median: float = 0.04
    request_sigma: float = 0.6
    mean_session_length: float = 4.0
    num_users: int = 200_000
    user_zipf: float = 1.3
    size_median: int = 16_000
    size_sigma: float = 1.0
    size_cap: int = 262_144
    policies: Tuple[PolicySpec, ...] = field(
        default_factory=lambda: (rr_policy(), sr_policy(4), srdyn_policy())
    )
    workload_seed: int = 86_420

    def __post_init__(self) -> None:
        if self.load_factor <= 0:
            raise ExperimentError(
                f"load_factor must be positive, got {self.load_factor!r}"
            )
        if self.num_arrivals <= 0:
            raise ExperimentError(
                f"num_arrivals must be positive, got {self.num_arrivals!r}"
            )
        if not 0 <= self.heavy_fraction <= 1:
            raise ExperimentError(
                f"heavy_fraction must be in [0, 1], got {self.heavy_fraction!r}"
            )
        if self.pareto_alpha <= 0 or self.pareto_lower <= 0:
            raise ExperimentError(
                "Pareto parameters must be positive, got "
                f"alpha={self.pareto_alpha!r}, lower={self.pareto_lower!r}"
            )
        if self.pareto_upper <= self.pareto_lower:
            raise ExperimentError(
                "Pareto upper bound must exceed the lower bound, got "
                f"[{self.pareto_lower!r}, {self.pareto_upper!r}]"
            )
        if self.request_median <= 0 or self.request_sigma < 0:
            raise ExperimentError(
                "invalid lognormal request model: "
                f"median={self.request_median!r}, sigma={self.request_sigma!r}"
            )
        if self.mean_session_length < 1:
            raise ExperimentError(
                "mean_session_length must be >= 1, got "
                f"{self.mean_session_length!r}"
            )
        if self.num_users <= 0:
            raise ExperimentError(
                f"num_users must be positive, got {self.num_users!r}"
            )
        if self.user_zipf <= 1:
            raise ExperimentError(
                f"user_zipf must be > 1, got {self.user_zipf!r}"
            )
        if not self.policies:
            raise ExperimentError("at least one policy is required")

    def scaled(self, num_arrivals: int) -> "HeavyTailConfig":
        """A cheaper copy of the configuration (for tests and CI)."""
        return replace(self, num_arrivals=num_arrivals)


@dataclass(frozen=True)
class AdversarialConfig:
    """Configuration of the adversarial-traffic scenario family.

    One legitimate Poisson workload is replayed against a load-balancer
    *tier* under each attack mode: a spoofed-source SYN flood, a
    hash-collision flood that concentrates on one ECMP bucket, and a
    gray failure (a server degraded, not killed, with a watchdog
    quarantining it through the server lifecycle).  ``baseline`` runs
    the same workload unmolested for comparison.
    """

    testbed: TestbedConfig = field(
        default_factory=lambda: TestbedConfig(
            num_servers=12,
            num_load_balancers=4,
            # Short flow-idle timeout so housekeeping can reap the flood's
            # flow-table entries in-run; the request timeout frees workers
            # pinned by half-open attack connections.
            flow_idle_timeout=5.0,
            request_timeout=2.0,
        )
    )
    load_factor: float = 0.55
    num_queries: int = 4_000
    service_mean: float = 0.05
    acceptance_policy: str = "SR8"
    num_candidates: int = 2
    modes: Tuple[str, ...] = (
        "baseline",
        "syn-flood",
        "hash-collision",
        "gray-failure",
    )
    #: Attack window, as fractions of the legitimate trace's duration.
    attack_start_fraction: float = 0.25
    attack_end_fraction: float = 0.65
    #: Flood intensity as a multiple of the legitimate arrival rate.
    flood_rate_factor: float = 3.0
    #: Spoofed source pool size (source churn) for the plain SYN flood.
    flood_sources: int = 32
    #: Number of distinct colliding 5-tuples the offline search finds.
    collision_flows: int = 256
    #: Index of the LB instance the collision flood concentrates on.
    collision_target: int = 0
    #: Gray failure: victim CPU speed multiplier and square-wave jitter.
    degraded_speed: float = 0.2
    jitter_amplitude: float = 0.3
    jitter_interval: float = 0.5
    #: Watchdog (quarantine signal) parameters.
    watchdog_interval: float = 0.5
    watchdog_slow_factor: float = 2.0
    #: Busy-thread floor below which a server can never be quarantined;
    #: keeps a lightly loaded fleet (median ~1) from tripping the
    #: detector on ordinary Poisson bursts.
    watchdog_min_busy: int = 5
    watchdog_consecutive: int = 3
    #: Whether quarantine drains the victim and provisions a replacement.
    quarantine: bool = True
    #: Flow-table housekeeping period on every LB instance.
    housekeeping_interval: float = 1.0
    workload_seed: int = 13_579

    _KNOWN_MODES = ("baseline", "syn-flood", "hash-collision", "gray-failure")

    def __post_init__(self) -> None:
        if self.testbed.num_load_balancers < 2:
            raise ExperimentError(
                "adversarial experiments need a tier of at least 2 load "
                f"balancers, got {self.testbed.num_load_balancers!r}"
            )
        if self.testbed.request_timeout <= 0:
            raise ExperimentError(
                "adversarial experiments need a positive request_timeout "
                "(otherwise half-open attack connections pin workers "
                "forever), got "
                f"{self.testbed.request_timeout!r}"
            )
        if self.load_factor <= 0:
            raise ExperimentError(
                f"load_factor must be positive, got {self.load_factor!r}"
            )
        if self.num_queries <= 0:
            raise ExperimentError(
                f"num_queries must be positive, got {self.num_queries!r}"
            )
        if self.service_mean <= 0:
            raise ExperimentError(
                f"service_mean must be positive, got {self.service_mean!r}"
            )
        if not self.modes:
            raise ExperimentError("at least one attack mode is required")
        for mode in self.modes:
            if mode not in self._KNOWN_MODES:
                raise ExperimentError(
                    f"unknown attack mode {mode!r}: expected one of "
                    f"{self._KNOWN_MODES}"
                )
        if not 0 < self.attack_start_fraction < self.attack_end_fraction <= 1:
            raise ExperimentError(
                "attack window must satisfy 0 < start < end <= 1, got "
                f"[{self.attack_start_fraction!r}, "
                f"{self.attack_end_fraction!r}]"
            )
        if self.flood_rate_factor <= 0:
            raise ExperimentError(
                f"flood_rate_factor must be positive, got "
                f"{self.flood_rate_factor!r}"
            )
        if self.flood_sources <= 0:
            raise ExperimentError(
                f"flood_sources must be positive, got {self.flood_sources!r}"
            )
        if self.collision_flows <= 0:
            raise ExperimentError(
                f"collision_flows must be positive, got "
                f"{self.collision_flows!r}"
            )
        if not 0 <= self.collision_target < self.testbed.num_load_balancers:
            raise ExperimentError(
                f"collision_target {self.collision_target!r} is out of "
                f"range for a tier of {self.testbed.num_load_balancers} "
                "instances"
            )
        if not 0 < self.degraded_speed < 1:
            raise ExperimentError(
                f"degraded_speed must be in (0, 1), got "
                f"{self.degraded_speed!r}"
            )
        if self.housekeeping_interval <= 0:
            raise ExperimentError(
                "housekeeping_interval must be positive, got "
                f"{self.housekeeping_interval!r}"
            )

    @property
    def policy(self) -> PolicySpec:
        """The Service Hunting policy every mode runs under."""
        return PolicySpec(
            name=self.acceptance_policy,
            acceptance_policy=self.acceptance_policy,
            num_candidates=self.num_candidates,
        )

    def scaled(self, num_queries: int) -> "AdversarialConfig":
        """A cheaper copy of the configuration (for tests and CI)."""
        return replace(self, num_queries=num_queries)


@dataclass(frozen=True)
class ScaleConfig:
    """Configuration of the partitioned million-client ``scale`` scenario.

    The scenario models one datacenter front end spreading an aggregate
    query stream over ``pods`` identical load-balancer/server pods via
    the pure ECMP hash (:func:`repro.net.ecmp.select_next_hop_name`).
    Each pod is an independent :class:`TestbedConfig`-shaped slice with
    its own simulator, so the run can be executed by
    :mod:`repro.sim.partition` on one process or many — bit-identically.

    ``testbed`` describes one pod, not the whole deployment; the
    deployment is ``pods`` copies of it behind the front-end stage.
    """

    testbed: TestbedConfig = field(default_factory=TestbedConfig)
    pods: int = 4
    #: Aggregate query count across every pod (the north-star scale runs
    #: use 1e6+); each pod receives the share the front-end hash deals it.
    num_queries: int = 1_000_000
    load_factor: float = 0.8
    service_mean: float = 0.02
    acceptance_policy: str = "SR8"
    num_candidates: int = 2
    #: Front-end ECMP hash over pods: ``rendezvous`` or ``modulo``.
    ecmp_hash: str = "rendezvous"
    #: One-way latency of the link between the front-end stage and the
    #: pods — the conservative lookahead of the partitioned run.
    boundary_latency: float = 200e-6
    #: Cap on synchronization windows per run (see
    #: :func:`repro.sim.partition.window_ends`).
    max_windows: int = 64
    #: Per-pod saturation rate override; analytic when ``None``.
    saturation_rate: Optional[float] = None
    workload_seed: int = 86_420

    def __post_init__(self) -> None:
        if self.pods < 1:
            raise ExperimentError(f"pods must be positive, got {self.pods!r}")
        if self.num_queries < self.pods:
            raise ExperimentError(
                f"num_queries ({self.num_queries!r}) must be at least the "
                f"pod count ({self.pods!r})"
            )
        if self.load_factor <= 0:
            raise ExperimentError(
                f"load_factor must be positive, got {self.load_factor!r}"
            )
        if self.service_mean <= 0:
            raise ExperimentError(
                f"service_mean must be positive, got {self.service_mean!r}"
            )
        if self.ecmp_hash not in ("rendezvous", "modulo"):
            raise ExperimentError(
                f"unknown ecmp_hash {self.ecmp_hash!r}: expected "
                "'rendezvous' or 'modulo'"
            )
        if self.boundary_latency < 0:
            raise ExperimentError(
                "boundary_latency must be non-negative, got "
                f"{self.boundary_latency!r}"
            )
        if self.max_windows < 1:
            raise ExperimentError(
                f"max_windows must be positive, got {self.max_windows!r}"
            )
        if self.saturation_rate is not None and self.saturation_rate <= 0:
            raise ExperimentError(
                "saturation_rate must be positive, got "
                f"{self.saturation_rate!r}"
            )

    @property
    def policy(self) -> PolicySpec:
        """The Service Hunting policy every pod runs under."""
        return PolicySpec(
            name=self.acceptance_policy,
            acceptance_policy=self.acceptance_policy,
            num_candidates=self.num_candidates,
        )

    def pod_names(self) -> Tuple[str, ...]:
        """Stable front-end next-hop names, one per pod."""
        return tuple(f"pod-{index}" for index in range(self.pods))

    def scaled(self, num_queries: int, pods: Optional[int] = None) -> "ScaleConfig":
        """A cheaper copy of the configuration (for tests and CI)."""
        return replace(
            self,
            num_queries=num_queries,
            pods=pods if pods is not None else self.pods,
        )

@dataclass(frozen=True)
class ChaosConfig:
    """Configuration of the fault-injection ``chaos`` scenario family.

    One legitimate Poisson workload is replayed against a 2-LB ECMP tier
    while :mod:`repro.net.faults` impairs the fabric: ``loss`` mixes
    i.i.d. loss, corruption-as-drop and Gilbert–Elliott bursts; ``flap``
    schedules link-down windows; ``jitter`` adds latency jitter plus
    bounded reordering.  ``baseline`` runs the same workload through a
    fully *disabled* fault pipeline — pinning that an installed-but-idle
    pipeline stays bit-identical to no pipeline at all.  The testbed
    arms the client's SYN retransmission and bounded retries and the
    servers' load-shedding watermark, so the cells measure recovery, not
    just damage.
    """

    testbed: TestbedConfig = field(
        default_factory=lambda: TestbedConfig(
            num_servers=12,
            num_load_balancers=2,
            # Reap flow-table entries orphaned by dropped packets in-run,
            # and free workers pinned by half-open connections whose
            # request payload was lost.
            flow_idle_timeout=5.0,
            request_timeout=2.0,
            # Client robustness: fast initial RTO (the simulated RTTs are
            # sub-millisecond), doubling to a 2 s cap, then bounded
            # full-connection retries on fresh source ports.
            syn_retransmit_timeout=0.2,
            syn_retransmit_cap=2.0,
            syn_retransmit_limit=4,
            retry_timeout=1.5,
            max_retries=3,
            # Shed just below the backlog capacity of 128.
            backlog_shed_watermark=112,
        )
    )
    load_factor: float = 0.6
    num_queries: int = 4_000
    service_mean: float = 0.05
    acceptance_policy: str = "SR8"
    num_candidates: int = 2
    modes: Tuple[str, ...] = ("baseline", "loss", "flap", "jitter")
    #: ``loss`` cell: i.i.d. loss and corruption rates, plus the
    #: Gilbert–Elliott burst process (enter/exit per packet, loss
    #: probability while in the bad state).
    loss_rate: float = 0.01
    corruption_rate: float = 0.001
    burst_enter: float = 0.0005
    burst_exit: float = 0.2
    burst_loss: float = 0.9
    #: ``flap`` cell: number of link-down windows and each one's length
    #: in seconds, spread evenly over the trace.
    flap_count: int = 2
    flap_down: float = 0.25
    #: ``jitter`` cell: exponential extra latency (mean/cap seconds) and
    #: bounded reordering (rate, hold-back window seconds).
    jitter_mean: float = 0.002
    jitter_cap: float = 0.02
    reorder_rate: float = 0.02
    reorder_window: float = 0.001
    workload_seed: int = 97_531

    _KNOWN_MODES = ("baseline", "loss", "flap", "jitter")

    def __post_init__(self) -> None:
        if self.testbed.num_load_balancers < 2:
            raise ExperimentError(
                "chaos experiments need a tier of at least 2 load "
                f"balancers, got {self.testbed.num_load_balancers!r}"
            )
        if self.load_factor <= 0:
            raise ExperimentError(
                f"load_factor must be positive, got {self.load_factor!r}"
            )
        if self.num_queries <= 0:
            raise ExperimentError(
                f"num_queries must be positive, got {self.num_queries!r}"
            )
        if self.service_mean <= 0:
            raise ExperimentError(
                f"service_mean must be positive, got {self.service_mean!r}"
            )
        if not self.modes:
            raise ExperimentError("at least one chaos mode is required")
        for mode in self.modes:
            if mode not in self._KNOWN_MODES:
                raise ExperimentError(
                    f"unknown chaos mode {mode!r}: expected one of "
                    f"{self._KNOWN_MODES}"
                )
        for name in (
            "loss_rate",
            "corruption_rate",
            "burst_enter",
            "burst_exit",
            "burst_loss",
            "reorder_rate",
        ):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ExperimentError(
                    f"{name} must be in [0, 1], got {value!r}"
                )
        if self.flap_count < 0:
            raise ExperimentError(
                f"flap_count must be non-negative, got {self.flap_count!r}"
            )
        if self.flap_down <= 0:
            raise ExperimentError(
                f"flap_down must be positive, got {self.flap_down!r}"
            )
        for name in ("jitter_mean", "jitter_cap", "reorder_window"):
            value = getattr(self, name)
            if value < 0:
                raise ExperimentError(
                    f"{name} must be non-negative, got {value!r}"
                )

    @property
    def policy(self) -> PolicySpec:
        """The Service Hunting policy every cell runs under."""
        return PolicySpec(
            name=self.acceptance_policy,
            acceptance_policy=self.acceptance_policy,
            num_candidates=self.num_candidates,
        )

    def scaled(self, num_queries: int) -> "ChaosConfig":
        """A cheaper copy of the configuration (for tests and CI)."""
        return replace(self, num_queries=num_queries)
