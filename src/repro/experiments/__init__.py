"""Experiment harness: the paper's evaluation, end to end.

Builds the simulated testbed (one load balancer, twelve 2-core Apache
servers, one traffic generator on a shared LAN), calibrates the
saturation rate λ₀, and runs the Poisson sweep (Figures 2–5) and the
Wikipedia replay (Figures 6–8) under each load-balancing configuration.
The :mod:`repro.experiments.figures` module extracts and renders the
exact series each figure plots.

Every experiment family is a declarative
:class:`~repro.experiments.scenario.ScenarioSpec` registered in
:mod:`repro.experiments.registry`; :func:`~repro.experiments.scenario.run_scenario`
is the single driver (and the single home of ``jobs=`` dispatch).  On
top of the paper's three families, the harness ships the ``flash-crowd``
and ``heterogeneous-fleet`` scenarios.
"""

from repro.experiments.calibration import (
    CalibrationProbe,
    CalibrationResult,
    analytic_saturation_rate,
    find_empirical_saturation_rate,
)
from repro.experiments.config import (
    HIGH_LOAD_FACTOR,
    LIGHT_LOAD_FACTOR,
    PAPER_LOAD_FACTORS,
    ChurnEvent,
    FlashCrowdConfig,
    HeterogeneousFleetConfig,
    PoissonSweepConfig,
    PolicySpec,
    ResilienceConfig,
    TestbedConfig,
    WikipediaReplayConfig,
    paper_policy_suite,
    rr_policy,
    sr_policy,
    srdyn_policy,
)
from repro.experiments import registry
from repro.experiments.scenario import (
    ScenarioCell,
    ScenarioResult,
    ScenarioSpec,
    ScenarioTask,
    run_scenario,
)
from repro.experiments.platform import Testbed, build_testbed
from repro.experiments.poisson_experiment import (
    PoissonRunPayload,
    PoissonRunResult,
    PoissonSweep,
    PoissonSweepResult,
    make_poisson_trace,
    run_poisson_once,
)
from repro.experiments.runner import SweepRunner, resolve_jobs
from repro.experiments.resilience_experiment import (
    ResilienceComparison,
    ResilienceRunResult,
    make_resilience_trace,
    render_resilience_table,
    resilience_saturation_rate,
    run_resilience_comparison,
    run_resilience_once,
)
from repro.experiments.wikipedia_experiment import (
    WikipediaReplay,
    WikipediaReplayResult,
    WikipediaRunResult,
    make_wikipedia_trace,
)
from repro.experiments.flash_crowd_experiment import (
    FlashCrowdRunResult,
    make_flash_crowd_trace,
    render_flash_crowd,
    run_flash_crowd,
)
from repro.experiments.heterogeneous_experiment import (
    make_heterogeneous_trace,
    render_heterogeneous_fleet,
    run_heterogeneous_fleet,
    tier_acceptance_shares,
)
from repro.experiments import figures

__all__ = [
    "TestbedConfig",
    "PolicySpec",
    "PoissonSweepConfig",
    "WikipediaReplayConfig",
    "rr_policy",
    "sr_policy",
    "srdyn_policy",
    "paper_policy_suite",
    "PAPER_LOAD_FACTORS",
    "HIGH_LOAD_FACTOR",
    "LIGHT_LOAD_FACTOR",
    "Testbed",
    "build_testbed",
    "analytic_saturation_rate",
    "find_empirical_saturation_rate",
    "CalibrationResult",
    "CalibrationProbe",
    "PoissonSweep",
    "PoissonSweepResult",
    "PoissonRunResult",
    "PoissonRunPayload",
    "SweepRunner",
    "resolve_jobs",
    "run_poisson_once",
    "make_poisson_trace",
    "WikipediaReplay",
    "WikipediaReplayResult",
    "WikipediaRunResult",
    "make_wikipedia_trace",
    "ChurnEvent",
    "ResilienceConfig",
    "ResilienceComparison",
    "ResilienceRunResult",
    "make_resilience_trace",
    "render_resilience_table",
    "resilience_saturation_rate",
    "run_resilience_comparison",
    "run_resilience_once",
    "registry",
    "run_scenario",
    "ScenarioCell",
    "ScenarioResult",
    "ScenarioSpec",
    "ScenarioTask",
    "FlashCrowdConfig",
    "FlashCrowdRunResult",
    "make_flash_crowd_trace",
    "render_flash_crowd",
    "run_flash_crowd",
    "HeterogeneousFleetConfig",
    "make_heterogeneous_trace",
    "render_heterogeneous_fleet",
    "run_heterogeneous_fleet",
    "tier_acceptance_shares",
    "figures",
]
