"""Flash-crowd experiments: a sudden overload spike over the testbed.

The paper evaluates Service Hunting under *stationary* Poisson load;
this family asks what the power of two choices buys when the load is
anything but stationary — a flash crowd.  The workload is a stepped
Poisson schedule (:mod:`repro.workload.flash_crowd`): a baseline phase
below saturation, a spike phase *above* saturation (ρ > 1 — the fleet
cannot drain the offered load while the crowd lasts), and a recovery
phase back at the baseline rate.  Every policy replays the same trace.

Reported per policy:

* per-phase response-time summaries (baseline / spike / recovery), so
  the overload penalty and the drain-back are separately visible;
* per-bin median and 90th-percentile series across the whole run (the
  scenario's figure), showing how the spike propagates;
* reset counts — under overload the backlog tips over, and how many
  connections a policy sacrifices is part of the comparison.

The family is registered as the ``flash-crowd`` scenario and aggregates
into a generic :class:`~repro.experiments.scenario.ScenarioResult` keyed
by policy name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments import registry
from repro.experiments.calibration import analytic_saturation_rate
from repro.experiments.config import FlashCrowdConfig, PolicySpec, TestbedConfig
from repro.experiments.platform import Testbed, build_testbed
from repro.experiments.scenario import (
    ScenarioCell,
    ScenarioResult,
    ScenarioSpec,
    TraceProvider,
)
from repro.metrics.binning import TimeBinner
from repro.metrics.collector import CollectorPayload, ResponseTimeCollector
from repro.metrics.reporting import format_table
from repro.metrics.stats import SummaryStatistics
from repro.workload.flash_crowd import RatePhase, SteppedPoissonWorkload
from repro.workload.requests import RequestCatalog
from repro.workload.service_models import ExponentialServiceTime
from repro.workload.trace import Trace

#: Phase labels, in schedule order.
PHASES: Tuple[str, ...] = ("baseline", "spike", "recovery")


def flash_crowd_saturation_rate(config: FlashCrowdConfig) -> float:
    """The λ₀ the phase load factors are normalised against."""
    if config.saturation_rate is not None:
        return config.saturation_rate
    return analytic_saturation_rate(config.testbed, config.service_mean)


def make_flash_crowd_trace(config: FlashCrowdConfig) -> Trace:
    """The stepped trace shared by every policy of a comparison."""
    saturation = flash_crowd_saturation_rate(config)
    workload = SteppedPoissonWorkload(
        phases=(
            RatePhase(config.baseline_duration, config.baseline_load * saturation),
            RatePhase(config.spike_duration, config.spike_load * saturation),
            RatePhase(config.recovery_duration, config.baseline_load * saturation),
        ),
        service_model=ExponentialServiceTime(config.service_mean),
    )
    rng = np.random.default_rng([config.workload_seed, len(workload.phases)])
    return workload.generate(rng)


@dataclass
class FlashCrowdRunResult:
    """Outcome of replaying the flash-crowd trace under one policy."""

    policy: PolicySpec
    collector: ResponseTimeCollector
    bin_width: float
    total_duration: float
    spike_window: Tuple[float, float]
    requests_served: int
    connections_reset: int
    simulated_duration: float

    def binned(self) -> TimeBinner:
        """Response times binned by arrival time across the whole run."""
        return self.collector.binned(bin_width=self.bin_width)

    def median_series(self) -> List[Tuple[float, float]]:
        """Per-bin median response time (the figure's middle panel)."""
        return self.binned().median_series(through=self.total_duration)

    def p90_series(self) -> List[Tuple[float, float]]:
        """Per-bin 90th-percentile response time (9th decile per bin)."""
        return [
            (center, deciles[-1])
            for center, deciles in self.binned().decile_series(
                through=self.total_duration
            )
        ]

    def phase_window(self, phase: str) -> Tuple[float, float]:
        """``(start, end)`` of one phase, in trace time."""
        spike_start, spike_end = self.spike_window
        if phase == "baseline":
            return (0.0, spike_start)
        if phase == "spike":
            return (spike_start, spike_end)
        if phase == "recovery":
            return (spike_end, float("inf"))
        from repro.errors import ExperimentError

        raise ExperimentError(
            f"unknown phase {phase!r}: expected one of {', '.join(PHASES)}"
        )

    def phase_response_times(self, phase: str) -> List[float]:
        """Response times of the queries *sent* during one phase."""
        start, end = self.phase_window(phase)
        return [
            outcome.response_time
            for outcome in self.collector.outcomes()
            if start <= outcome.sent_at < end
        ]

    def phase_summary(self, phase: str) -> Optional[SummaryStatistics]:
        """Response-time summary of one phase's queries.

        ``None`` when no query sent during the phase completed (a heavy
        enough spike can reset every one of them).
        """
        from repro.metrics.stats import summarize

        times = self.phase_response_times(phase)
        if not times:
            return None
        return summarize(times)

    def export_payload(self) -> "FlashCrowdRunPayload":
        """Compact, picklable export of this run (for the scenario runner)."""
        return FlashCrowdRunPayload(
            policy=self.policy,
            collector=self.collector.export_payload(),
            bin_width=self.bin_width,
            total_duration=self.total_duration,
            spike_window=self.spike_window,
            requests_served=self.requests_served,
            connections_reset=self.connections_reset,
            simulated_duration=self.simulated_duration,
        )


@dataclass
class FlashCrowdRunPayload:
    """Picklable compact form of a :class:`FlashCrowdRunResult`."""

    policy: PolicySpec
    collector: CollectorPayload
    bin_width: float
    total_duration: float
    spike_window: Tuple[float, float]
    requests_served: int
    connections_reset: int
    simulated_duration: float

    def to_result(self) -> FlashCrowdRunResult:
        """Rebuild the full result object in the parent process."""
        return FlashCrowdRunResult(
            policy=self.policy,
            collector=ResponseTimeCollector.from_payload(self.collector),
            bin_width=self.bin_width,
            total_duration=self.total_duration,
            spike_window=self.spike_window,
            requests_served=self.requests_served,
            connections_reset=self.connections_reset,
            simulated_duration=self.simulated_duration,
        )


class FlashCrowdScenario(ScenarioSpec):
    """The flash-crowd comparison as a declarative scenario."""

    name = "flash-crowd"
    title = "Step/spike arrival schedule: overload absorption per policy"

    def default_config(self) -> FlashCrowdConfig:
        return FlashCrowdConfig()

    def smoke_config(self) -> FlashCrowdConfig:
        from repro.experiments.config import rr_policy, sr_policy

        return FlashCrowdConfig(
            testbed=TestbedConfig(
                num_servers=4, workers_per_server=8, backlog_capacity=16
            ),
            policies=(rr_policy(), sr_policy(4)),
        ).scaled(0.25)

    def cells(self, config: FlashCrowdConfig) -> List[ScenarioCell]:
        return [
            ScenarioCell(key=policy.name, params={"policy": policy})
            for policy in config.policies
        ]

    # trace_key: the default (one shared trace for every policy).

    def make_trace(self, config: FlashCrowdConfig, cell: ScenarioCell) -> Trace:
        return make_flash_crowd_trace(config)

    def build_platform(
        self, config: FlashCrowdConfig, cell: ScenarioCell
    ) -> Testbed:
        policy = cell.param("policy")
        return build_testbed(
            config.testbed,
            policy,
            catalog=RequestCatalog(),
            run_name=f"flash-crowd-{policy.name}",
        )

    def run_once(
        self, config: FlashCrowdConfig, cell: ScenarioCell, trace: Trace
    ) -> FlashCrowdRunPayload:
        testbed = self.build_platform(config, cell)
        duration = testbed.run_trace(trace)
        result = FlashCrowdRunResult(
            policy=cell.param("policy"),
            collector=testbed.collector,
            bin_width=config.bin_width,
            total_duration=config.total_duration,
            spike_window=config.spike_window,
            requests_served=testbed.total_requests_served(),
            connections_reset=testbed.total_resets(),
            simulated_duration=duration,
        )
        return result.export_payload()

    def aggregate(
        self,
        config: FlashCrowdConfig,
        cells: Sequence[ScenarioCell],
        payloads: Sequence[FlashCrowdRunPayload],
        trace_for: TraceProvider,
    ) -> ScenarioResult:
        result = ScenarioResult(
            scenario=self.name,
            config=config,
            meta={
                "saturation_rate": flash_crowd_saturation_rate(config),
                "spike_window": config.spike_window,
                "total_duration": config.total_duration,
            },
        )
        for payload in payloads:
            result.runs[payload.policy.name] = payload.to_result()
        return result

    def render(self, result: ScenarioResult) -> str:
        return render_flash_crowd(result)


#: The registered spec instance (also reachable via ``registry.get``).
FLASH_CROWD_SCENARIO = registry.register(FlashCrowdScenario())


def run_flash_crowd(
    config: Optional[FlashCrowdConfig] = None, jobs: Optional[int] = 1
) -> ScenarioResult:
    """Replay the flash-crowd trace under every configured policy."""
    from repro.experiments.scenario import run_scenario

    return run_scenario(FLASH_CROWD_SCENARIO, config, jobs=jobs)


def render_flash_crowd(result: ScenarioResult) -> str:
    """Per-phase summary table plus the per-bin median/p90 series."""
    config: FlashCrowdConfig = result.config
    summary_rows: List[List[object]] = []
    for name in result.keys():
        run: FlashCrowdRunResult = result.run(name)
        row: List[object] = [name]
        for phase in PHASES:
            summary = run.phase_summary(phase)
            if summary is None:
                row.extend([float("nan"), float("nan")])
            else:
                row.extend([summary.mean, summary.p90])
        row.append(run.connections_reset)
        summary_rows.append(row)
    headers = ["policy"]
    for phase in PHASES:
        headers.extend([f"{phase} mean (s)", f"{phase} p90 (s)"])
    headers.append("resets")
    spike_start, spike_end = config.spike_window
    summary_table = format_table(
        headers,
        summary_rows,
        title=(
            f"Flash crowd: rho {config.baseline_load:g} -> {config.spike_load:g} "
            f"during [{spike_start:g}s, {spike_end:g}s), "
            f"{config.total_duration:g}s total"
        ),
    )

    series: Dict[str, List[Tuple[float, float]]] = {
        name: result.run(name).median_series() for name in result.keys()
    }
    p90s: Dict[str, List[Tuple[float, float]]] = {
        name: result.run(name).p90_series() for name in result.keys()
    }
    reference = next(iter(series.values()))
    bin_headers = ["time (s)"]
    for name in series:
        bin_headers.extend([f"{name} median (s)", f"{name} p90 (s)"])
    bin_rows: List[List[object]] = []
    for index, (center, _) in enumerate(reference):
        row = [center]
        for name in series:
            row.append(
                series[name][index][1] if index < len(series[name]) else float("nan")
            )
            row.append(
                p90s[name][index][1] if index < len(p90s[name]) else float("nan")
            )
        bin_rows.append(row)
    bin_table = format_table(
        bin_headers, bin_rows, title="Flash crowd: per-bin response time"
    )
    return summary_table + "\n\n" + bin_table
