"""Wikipedia-replay experiments (paper §VI, Figures 6–8).

The replay generates one synthetic 24-hour trace (see
:mod:`repro.workload.wikipedia` and the substitution note in DESIGN.md)
and replays it under the RR baseline and the SR4 policy — the comparison
the paper runs after SR4 came out best in the Poisson experiments.

Results are reported exactly as the paper does:

* Figure 6 — per-bin wiki-page query rate and median load time;
* Figure 7 — per-bin deciles 1–9 of the wiki-page load time;
* Figure 8 — whole-day CDF of wiki-page load times (plus the quartile
  comparison quoted in the text).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.config import PolicySpec, WikipediaReplayConfig
from repro.experiments.platform import build_testbed
from repro.experiments.runner import SweepRunner
from repro.metrics.binning import TimeBinner
from repro.metrics.collector import CollectorPayload, ResponseTimeCollector
from repro.metrics.stats import quartiles
from repro.workload.requests import KIND_STATIC, KIND_WIKI, RequestCatalog
from repro.workload.trace import Trace
from repro.workload.wikipedia import DiurnalRateCurve, SyntheticWikipediaWorkload


def make_wikipedia_trace(config: WikipediaReplayConfig) -> Trace:
    """Generate the synthetic replay trace described by ``config``."""
    curve = DiurnalRateCurve(
        mean_rate=config.mean_wiki_rate,
        amplitude=config.wiki_rate_amplitude,
        trough_hour=config.trough_hour,
    )
    workload = SyntheticWikipediaWorkload(
        curve=curve,
        replay_fraction=config.replay_fraction,
        static_per_wiki=config.static_per_wiki,
        duration=config.duration,
    )
    rng = np.random.default_rng(config.workload_seed)
    return workload.generate(rng)


@dataclass
class WikipediaRunResult:
    """Outcome of replaying the trace under one policy."""

    policy: PolicySpec
    collector: ResponseTimeCollector
    bin_width: float
    trace_duration: float
    requests_served: int
    connections_reset: int

    def wiki_binned(self) -> TimeBinner:
        """Wiki-page response times binned by arrival time."""
        return self.collector.binned(bin_width=self.bin_width, kind=KIND_WIKI)

    def wiki_response_times(self) -> List[float]:
        """All wiki-page response times (Figure 8's CDF input)."""
        return self.collector.response_times(kind=KIND_WIKI)

    def static_response_times(self) -> List[float]:
        """Static-asset response times (the paper checks they are tiny)."""
        return self.collector.response_times(kind=KIND_STATIC)

    def median_series(self) -> List[Tuple[float, float]]:
        """Per-bin median wiki-page load time (Figure 6, bottom panel)."""
        return self.wiki_binned().median_series(through=self.trace_duration)

    def rate_series(self) -> List[Tuple[float, float]]:
        """Per-bin wiki-page query rate (Figure 6, top panel)."""
        return self.wiki_binned().rate_series(through=self.trace_duration)

    def decile_series(self) -> List[Tuple[float, List[float]]]:
        """Per-bin deciles 1–9 of the wiki-page load time (Figure 7)."""
        return self.wiki_binned().decile_series(through=self.trace_duration)

    def wiki_quartiles(self) -> Tuple[float, float, float]:
        """Whole-day quartiles of the wiki-page load time (Figure 8 text)."""
        return quartiles(self.wiki_response_times())

    def export_payload(self) -> "WikipediaRunPayload":
        """Compact, picklable export of this run (for the sweep runner)."""
        return WikipediaRunPayload(
            policy=self.policy,
            collector=self.collector.export_payload(),
            bin_width=self.bin_width,
            trace_duration=self.trace_duration,
            requests_served=self.requests_served,
            connections_reset=self.connections_reset,
        )


@dataclass
class WikipediaRunPayload:
    """Picklable compact form of a :class:`WikipediaRunResult`."""

    policy: PolicySpec
    collector: CollectorPayload
    bin_width: float
    trace_duration: float
    requests_served: int
    connections_reset: int

    def to_result(self) -> WikipediaRunResult:
        """Rebuild the full result object in the parent process."""
        return WikipediaRunResult(
            policy=self.policy,
            collector=ResponseTimeCollector.from_payload(self.collector),
            bin_width=self.bin_width,
            trace_duration=self.trace_duration,
            requests_served=self.requests_served,
            connections_reset=self.connections_reset,
        )


@dataclass(frozen=True)
class WikipediaCellTask:
    """Picklable description of one policy's replay.

    A pre-generated trace (when the caller supplied one) rides along so
    the worker replays exactly it; otherwise the worker regenerates the
    trace from the config's workload seed, which yields the same trace
    the serial path would generate.
    """

    config: WikipediaReplayConfig
    policy: PolicySpec
    trace: Optional[Trace] = None


def _replay_one_policy(
    config: WikipediaReplayConfig, policy: PolicySpec, trace: Trace
) -> WikipediaRunResult:
    """Replay ``trace`` under one policy (shared by both sweep paths)."""
    testbed = build_testbed(
        config.testbed,
        policy,
        catalog=RequestCatalog(),
        run_name=f"wikipedia-{policy.name}",
    )
    testbed.run_trace(trace)
    return WikipediaRunResult(
        policy=policy,
        collector=testbed.collector,
        bin_width=config.bin_width,
        trace_duration=trace.duration,
        requests_served=testbed.total_requests_served(),
        connections_reset=testbed.total_resets(),
    )


def _run_wikipedia_cell(task: WikipediaCellTask) -> WikipediaRunPayload:
    """Pool worker: replay under one policy and export the payload."""
    trace = task.trace if task.trace is not None else make_wikipedia_trace(task.config)
    return _replay_one_policy(task.config, task.policy, trace).export_payload()


@dataclass
class WikipediaReplayResult:
    """Results of the replay under every configured policy."""

    config: WikipediaReplayConfig
    trace_summary: Dict[str, float]
    runs: Dict[str, WikipediaRunResult] = field(default_factory=dict)

    def run(self, policy_name: str) -> WikipediaRunResult:
        """The run for one policy, by name."""
        try:
            return self.runs[policy_name]
        except KeyError as exc:
            raise ExperimentError(f"no run for policy {policy_name!r}") from exc

    def policies(self) -> List[str]:
        """Names of the replayed policies."""
        return list(self.runs)


class WikipediaReplay:
    """Replay the synthetic Wikipedia trace under each configured policy."""

    def __init__(self, config: Optional[WikipediaReplayConfig] = None) -> None:
        self.config = config or WikipediaReplayConfig()

    def run(
        self, trace: Optional[Trace] = None, jobs: Optional[int] = 1
    ) -> WikipediaReplayResult:
        """Generate (or reuse) the trace and replay it under every policy.

        ``jobs`` fans the per-policy replays out over a process pool
        (``None``/``0`` = all cores); ``jobs=1`` keeps the historical
        in-process path.  Results are identical for any value — see
        :mod:`repro.experiments.runner` for the determinism contract.
        """
        config = self.config
        explicit_trace = trace
        if trace is None:
            trace = make_wikipedia_trace(config)
        summary = trace.summary()
        result = WikipediaReplayResult(
            config=config,
            trace_summary={
                "requests": float(summary.num_requests),
                "duration": summary.duration,
                "mean_rate": summary.mean_rate,
                "mean_demand": summary.mean_demand,
            },
        )
        runner = SweepRunner(jobs=jobs)
        if runner.serial:
            for policy in config.policies:
                result.runs[policy.name] = _replay_one_policy(config, policy, trace)
            return result
        # Only ship the trace to the workers when the caller supplied
        # one; a config-generated trace is cheaper to regenerate from
        # the seed than to pickle across the pool.
        tasks = [
            WikipediaCellTask(config=config, policy=policy, trace=explicit_trace)
            for policy in config.policies
        ]
        for task, payload in zip(tasks, runner.map(_run_wikipedia_cell, tasks)):
            result.runs[task.policy.name] = payload.to_result()
        return result
