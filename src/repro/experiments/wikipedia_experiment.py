"""Wikipedia-replay experiments (paper §VI, Figures 6–8).

The replay generates one synthetic 24-hour trace (see
:mod:`repro.workload.wikipedia` and the substitution note in DESIGN.md)
and replays it under the RR baseline and the SR4 policy — the comparison
the paper runs after SR4 came out best in the Poisson experiments.

Results are reported exactly as the paper does:

* Figure 6 — per-bin wiki-page query rate and median load time;
* Figure 7 — per-bin deciles 1–9 of the wiki-page load time;
* Figure 8 — whole-day CDF of wiki-page load times (plus the quartile
  comparison quoted in the text).

The replay is expressed as a
:class:`~repro.experiments.scenario.ScenarioSpec` (one cell per policy,
one shared trace); :class:`WikipediaReplay` is a thin entry point over
that spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.experiments import registry
from repro.experiments.config import PolicySpec, TestbedConfig, WikipediaReplayConfig
from repro.experiments.platform import Testbed, build_testbed
from repro.experiments.scenario import (
    ScenarioCell,
    ScenarioSpec,
    TraceProvider,
    run_scenario,
)
from repro.metrics.binning import TimeBinner
from repro.metrics.collector import CollectorPayload, ResponseTimeCollector
from repro.metrics.stats import quartiles
from repro.workload.requests import KIND_STATIC, KIND_WIKI, RequestCatalog
from repro.workload.trace import Trace
from repro.workload.wikipedia import DiurnalRateCurve, SyntheticWikipediaWorkload


def make_wikipedia_trace(config: WikipediaReplayConfig) -> Trace:
    """Generate the synthetic replay trace described by ``config``."""
    curve = DiurnalRateCurve(
        mean_rate=config.mean_wiki_rate,
        amplitude=config.wiki_rate_amplitude,
        trough_hour=config.trough_hour,
    )
    workload = SyntheticWikipediaWorkload(
        curve=curve,
        replay_fraction=config.replay_fraction,
        static_per_wiki=config.static_per_wiki,
        duration=config.duration,
    )
    rng = np.random.default_rng(config.workload_seed)
    return workload.generate(rng)


@dataclass
class WikipediaRunResult:
    """Outcome of replaying the trace under one policy."""

    policy: PolicySpec
    collector: ResponseTimeCollector
    bin_width: float
    trace_duration: float
    requests_served: int
    connections_reset: int

    def wiki_binned(self) -> TimeBinner:
        """Wiki-page response times binned by arrival time."""
        return self.collector.binned(bin_width=self.bin_width, kind=KIND_WIKI)

    def wiki_response_times(self) -> List[float]:
        """All wiki-page response times (Figure 8's CDF input)."""
        return self.collector.response_times(kind=KIND_WIKI)

    def static_response_times(self) -> List[float]:
        """Static-asset response times (the paper checks they are tiny)."""
        return self.collector.response_times(kind=KIND_STATIC)

    def median_series(self) -> List[Tuple[float, float]]:
        """Per-bin median wiki-page load time (Figure 6, bottom panel)."""
        return self.wiki_binned().median_series(through=self.trace_duration)

    def rate_series(self) -> List[Tuple[float, float]]:
        """Per-bin wiki-page query rate (Figure 6, top panel)."""
        return self.wiki_binned().rate_series(through=self.trace_duration)

    def decile_series(self) -> List[Tuple[float, List[float]]]:
        """Per-bin deciles 1–9 of the wiki-page load time (Figure 7)."""
        return self.wiki_binned().decile_series(through=self.trace_duration)

    def wiki_quartiles(self) -> Tuple[float, float, float]:
        """Whole-day quartiles of the wiki-page load time (Figure 8 text)."""
        return quartiles(self.wiki_response_times())

    def export_payload(self) -> "WikipediaRunPayload":
        """Compact, picklable export of this run (for the scenario runner)."""
        return WikipediaRunPayload(
            policy=self.policy,
            collector=self.collector.export_payload(),
            bin_width=self.bin_width,
            trace_duration=self.trace_duration,
            requests_served=self.requests_served,
            connections_reset=self.connections_reset,
        )


@dataclass
class WikipediaRunPayload:
    """Picklable compact form of a :class:`WikipediaRunResult`."""

    policy: PolicySpec
    collector: CollectorPayload
    bin_width: float
    trace_duration: float
    requests_served: int
    connections_reset: int

    def to_result(self) -> WikipediaRunResult:
        """Rebuild the full result object in the parent process."""
        return WikipediaRunResult(
            policy=self.policy,
            collector=ResponseTimeCollector.from_payload(self.collector),
            bin_width=self.bin_width,
            trace_duration=self.trace_duration,
            requests_served=self.requests_served,
            connections_reset=self.connections_reset,
        )


@dataclass
class WikipediaReplayResult:
    """Results of the replay under every configured policy."""

    config: WikipediaReplayConfig
    trace_summary: Dict[str, float]
    runs: Dict[str, WikipediaRunResult] = field(default_factory=dict)

    def run(self, policy_name: str) -> WikipediaRunResult:
        """The run for one policy, by name."""
        try:
            return self.runs[policy_name]
        except KeyError as exc:
            raise ExperimentError(f"no run for policy {policy_name!r}") from exc

    def policies(self) -> List[str]:
        """Names of the replayed policies."""
        return list(self.runs)


class WikipediaScenario(ScenarioSpec):
    """The synthetic Wikipedia replay as a declarative scenario."""

    name = "wikipedia"
    title = "Synthetic Wikipedia-day replay, RR vs SR4 (paper §VI, Figures 6–8)"

    def default_config(self) -> WikipediaReplayConfig:
        return WikipediaReplayConfig()

    def smoke_config(self) -> WikipediaReplayConfig:
        return replace(
            WikipediaReplayConfig(
                testbed=TestbedConfig(
                    num_servers=4, workers_per_server=8, backlog_capacity=16
                )
            ),
            static_per_wiki=0.2,
        ).compressed(duration=40.0)

    def cells(self, config: WikipediaReplayConfig) -> List[ScenarioCell]:
        return [
            ScenarioCell(key=policy.name, params={"policy": policy})
            for policy in config.policies
        ]

    # trace_key: the default (one shared trace for every policy).

    def make_trace(
        self, config: WikipediaReplayConfig, cell: ScenarioCell
    ) -> Trace:
        return make_wikipedia_trace(config)

    def build_platform(
        self, config: WikipediaReplayConfig, cell: ScenarioCell
    ) -> Testbed:
        policy = cell.param("policy")
        return build_testbed(
            config.testbed,
            policy,
            catalog=RequestCatalog(),
            run_name=f"wikipedia-{policy.name}",
        )

    def run_once(
        self, config: WikipediaReplayConfig, cell: ScenarioCell, trace: Trace
    ) -> WikipediaRunPayload:
        testbed = self.build_platform(config, cell)
        testbed.run_trace(trace)
        result = WikipediaRunResult(
            policy=cell.param("policy"),
            collector=testbed.collector,
            bin_width=config.bin_width,
            trace_duration=trace.duration,
            requests_served=testbed.total_requests_served(),
            connections_reset=testbed.total_resets(),
        )
        return result.export_payload()

    def aggregate(
        self,
        config: WikipediaReplayConfig,
        cells: Sequence[ScenarioCell],
        payloads: Sequence[WikipediaRunPayload],
        trace_for: TraceProvider,
    ) -> WikipediaReplayResult:
        summary = trace_for(cells[0]).summary()
        result = WikipediaReplayResult(
            config=config,
            trace_summary={
                "requests": float(summary.num_requests),
                "duration": summary.duration,
                "mean_rate": summary.mean_rate,
                "mean_demand": summary.mean_demand,
            },
        )
        for payload in payloads:
            result.runs[payload.policy.name] = payload.to_result()
        return result

    def render(self, result: WikipediaReplayResult) -> str:
        from repro.experiments import figures

        return figures.render_figure6(result)


#: The registered spec instance (also reachable via ``registry.get``).
WIKIPEDIA_SCENARIO = registry.register(WikipediaScenario())


class WikipediaReplay:
    """Replay the synthetic Wikipedia trace under each configured policy."""

    def __init__(self, config: Optional[WikipediaReplayConfig] = None) -> None:
        self.config = config or WikipediaReplayConfig()

    def run(
        self, trace: Optional[Trace] = None, jobs: Optional[int] = 1
    ) -> WikipediaReplayResult:
        """Generate (or reuse) the trace and replay it under every policy.

        ``jobs`` fans the per-policy replays out over a process pool
        (``None``/``0`` = all cores); ``jobs=1`` keeps the historical
        in-process path.  Results are identical for any value — see
        :mod:`repro.experiments.runner` for the determinism contract.
        An explicit ``trace`` is shipped to the workers verbatim; a
        config-generated trace is cheaper to regenerate from the seed
        than to pickle across the pool.
        """
        return run_scenario(WIKIPEDIA_SCENARIO, self.config, jobs=jobs, trace=trace)
