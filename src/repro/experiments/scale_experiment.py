"""The ``scale`` scenario: one partitioned run replaying millions of clients.

Every other family runs one testbed in one process, which caps a single
run at the engine's serial throughput.  This family models the next
tier up: a datacenter front end spreading one aggregate query stream
over ``pods`` identical load-balancer/server pods, with each pod an
independent simulator partition executed by :mod:`repro.sim.partition`.

**Slicing rule.**  The testbed is cut at the edge-router boundary.  The
front-end ECMP stage is modeled *offline* by the same pure hash the live
router uses (:func:`repro.net.ecmp.select_next_hop_name`): query ``i``
of the aggregate stream carries the modeled upstream source port
``EPHEMERAL_PORT_BASE + (i % EPHEMERAL_PORT_RANGE)``, and the 5-tuple
hash of that flow key assigns it to a pod.  Flows (ports) are pinned to
pods, exactly as a real per-flow ECMP stage would, and the assignment is
a pure function of the config — independent of how many processes
execute the run.  Inside a pod the replay uses the pod's own traffic
generator (with pod-local ephemeral ports), so no packet ever crosses a
partition mid-run; partitions only stream their timestamped request
outcomes back to the coordinator as
:class:`~repro.net.channel.BatchFrame` windows.

**Determinism.**  ``partitions`` (worker processes) never changes
results: pods, traces, and seeds depend only on the config, and the
coordinator merges outcome frames with the deterministic
``(time, pod, emission order)`` rule of
:func:`repro.net.channel.merge_frames`.  The scale golden test pins the
fingerprint across ``partitions=1`` and ``partitions=2``.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.experiments import registry
from repro.experiments.calibration import analytic_saturation_rate
from repro.experiments.config import ScaleConfig, TestbedConfig
from repro.experiments.platform import Testbed, build_testbed
from repro.experiments.scenario import (
    ScenarioCell,
    ScenarioSpec,
    TraceProvider,
    run_scenario,
)
from repro.metrics.collector import ResponseTimeCollector
from repro.net.channel import FrameSender
from repro.net.ecmp import select_next_hop_name
from repro.net.packet import FlowKey
from repro.net.tcp import EPHEMERAL_PORT_BASE, EPHEMERAL_PORT_RANGE, HTTP_PORT
from repro.sim.partition import (
    PartitionTask,
    run_partitioned,
    window_ends,
)
from repro.workload.requests import Request, RequestCatalog
from repro.workload.trace import Trace

#: Synthetic endpoint addresses of the modeled upstream flow keys.  They
#: only feed the pure 5-tuple hash (never a live fabric), so plain
#: strings are sufficient and cheap.
_FRONTEND_CLIENT = "2001:db8:feed::1"
_FRONTEND_VIP = "2001:db8:100::80"

#: Extra simulated seconds each pod runs past the last arrival before
#: the final drain (mirrors ``Testbed.run_trace``'s settle margin).
SETTLE_MARGIN = 5.0


def pod_saturation_rate(config: ScaleConfig) -> float:
    """Queries/sec one pod sustains at ρ=1 (analytic unless overridden)."""
    if config.saturation_rate is not None:
        return config.saturation_rate
    return analytic_saturation_rate(config.testbed, config.service_mean)


def frontend_port_of(query_index: int) -> int:
    """Modeled upstream source port of aggregate query ``query_index``."""
    return EPHEMERAL_PORT_BASE + (query_index % EPHEMERAL_PORT_RANGE)


def pod_of_port(config: ScaleConfig, port: int) -> int:
    """The pod the front-end ECMP stage deals flows of ``port`` to."""
    names = config.pod_names()
    name = select_next_hop_name(
        names,
        FlowKey(_FRONTEND_CLIENT, port, _FRONTEND_VIP, HTTP_PORT),
        config.ecmp_hash,
    )
    return names.index(name)


@lru_cache(maxsize=8)
def _pod_table_cached(pod_names: Tuple[str, ...], ecmp_hash: str) -> np.ndarray:
    table = np.empty(EPHEMERAL_PORT_RANGE, dtype=np.int64)
    for offset in range(EPHEMERAL_PORT_RANGE):
        name = select_next_hop_name(
            pod_names,
            FlowKey(
                _FRONTEND_CLIENT,
                EPHEMERAL_PORT_BASE + offset,
                _FRONTEND_VIP,
                HTTP_PORT,
            ),
            ecmp_hash,
        )
        table[offset] = pod_names.index(name)
    return table


def _pod_by_port_table(config: ScaleConfig) -> np.ndarray:
    """Pod assignment for every possible modeled port (vectorization aid).

    Only ``EPHEMERAL_PORT_RANGE`` distinct flow keys exist, so the
    per-query hash reduces to one table lookup — the difference between
    hashing 50k keys and hashing every query of a million-query run.
    The table depends only on the pod names and hash scheme, so it is
    memoized per process (every pod worker of a run shares it).
    """
    return _pod_table_cached(config.pod_names(), config.ecmp_hash)


def make_scale_stream(
    config: ScaleConfig,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The aggregate query stream: ``(arrival times, demands, pod index)``.

    A pure function of the config (the RNG is seeded from the workload
    seed and the query count only), shared by every partition: each
    worker regenerates the same arrays and keeps only its pod's slice.
    """
    rate = config.load_factor * config.pods * pod_saturation_rate(config)
    rng = np.random.default_rng([config.workload_seed, config.num_queries])
    arrivals = np.cumsum(rng.exponential(1.0 / rate, size=config.num_queries))
    demands = rng.exponential(config.service_mean, size=config.num_queries)
    offsets = np.arange(config.num_queries, dtype=np.int64) % EPHEMERAL_PORT_RANGE
    pods = _pod_by_port_table(config)[offsets]
    return arrivals, demands, pods


def make_pod_trace(config: ScaleConfig, pod_index: int) -> Tuple[Trace, float]:
    """One pod's slice of the stream, plus the *global* run horizon.

    Request ids and arrival times are the aggregate stream's, so the
    merged result reads as one deployment-wide run.  The horizon is the
    last aggregate arrival (not the pod's), so every partition runs the
    same synchronization windows.
    """
    if not 0 <= pod_index < config.pods:
        raise ExperimentError(
            f"pod index {pod_index!r} out of range for {config.pods} pods"
        )
    arrivals, demands, pods = make_scale_stream(config)
    requests = [
        Request(
            request_id=int(index) + 1,
            arrival_time=float(arrivals[index]),
            service_demand=float(demands[index]),
            url="/scale",
        )
        for index in np.flatnonzero(pods == pod_index)
    ]
    horizon = float(arrivals[-1]) + SETTLE_MARGIN
    return Trace(requests, name=f"scale-pod-{pod_index}"), horizon


def _pod_seed(config: ScaleConfig, pod_index: int) -> int:
    """Per-pod simulator seed: distinct pods, deterministic config."""
    digest = hashlib.sha256(
        f"scale-pod:{config.testbed.seed}:{pod_index}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:4], "big")


class _StagingCollector(ResponseTimeCollector):
    """Collector that also streams every outcome onto the frame channel.

    Outcomes are recorded at their completion (or failure) event, so the
    staging times are exactly the simulator clock and non-decreasing —
    the ordering the conservative-lookahead frames promise.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._simulator = None
        self._sender: Optional[FrameSender] = None

    def bind(self, simulator, sender: FrameSender) -> None:
        self._simulator = simulator
        self._sender = sender

    def record(self, outcome) -> None:
        super().record(outcome)
        if self._sender is not None:
            self._sender.stage(
                self._simulator.now,
                (
                    outcome.request_id,
                    outcome.sent_at,
                    outcome.response_time if outcome.succeeded else None,
                    outcome.failure_reason,
                ),
            )


def scale_partition_worker(task: PartitionTask, sender: FrameSender) -> None:
    """Run one pod end to end, streaming outcomes in lookahead windows.

    Module-level so :func:`repro.sim.partition.run_partitioned` can ship
    it to worker processes; the payload is ``(config, pod_index)``.
    """
    config, pod_index = task.payload
    trace, horizon = make_pod_trace(config, pod_index)
    collector = _StagingCollector(name=f"pod-{pod_index}")
    testbed = build_testbed(
        config.testbed.with_seed(_pod_seed(config, pod_index)),
        config.policy,
        catalog=RequestCatalog(),
        collector=collector,
        run_name=f"pod-{pod_index}",
    )
    collector.bind(testbed.simulator, sender)

    for request in trace:
        testbed.catalog.add(request)
    testbed.client.schedule_trace(trace)

    start = time.perf_counter()
    for window_end in window_ends(
        horizon, config.boundary_latency, config.max_windows
    ):
        testbed.simulator.run_window(window_end)
        # One frame per window; an empty frame is a pure watermark
        # advance (the null message of conservative synchronization).
        sender.flush(window_end)
    # The telemetry probe's periodic sampler would keep the heap alive
    # forever — stop it (taking a final sample) before the drain below.
    if testbed.telemetry is not None:
        testbed.telemetry.stop()
    # Stragglers past the horizon (idle-flow expiries, late timeouts)
    # drain here and ride in the sentinel frame.
    testbed.simulator.run()
    wall_seconds = time.perf_counter() - start

    totals = collector.totals
    summary = {
        "pod": pod_index,
        "queries": len(trace),
        "completed": totals.completed,
        "failed": totals.failed,
        "requests_served": testbed.total_requests_served(),
        "connections_reset": testbed.total_resets(),
        "events_executed": testbed.simulator.events_executed,
        "simulated_seconds": testbed.simulator.now,
        "wall_seconds": wall_seconds,
    }
    if testbed.telemetry is not None:
        # Ship the pod's payload home inside the summary frame; the
        # coordinator merges pods in index order and publishes one
        # deployment-wide payload.
        summary["telemetry"] = testbed.telemetry.export_payload()
    sender.close(summary=summary)


@dataclass
class ScaleRunResult:
    """The merged, deployment-wide outcome of one partitioned run."""

    config: ScaleConfig
    partitions: int
    #: Completion/failure times of the merged outcome stream, in the
    #: deterministic merge order.
    times: np.ndarray
    request_ids: np.ndarray
    #: Response time per outcome; NaN marks a failed query.
    response_times: np.ndarray
    pod_indices: np.ndarray
    #: Per-pod worker summaries keyed by pod index.
    pod_summaries: Dict[int, Dict[str, Any]]
    #: Wall-clock seconds of the whole partitioned run (coordinator).
    wall_seconds: float

    @property
    def completed(self) -> int:
        return int(np.count_nonzero(~np.isnan(self.response_times)))

    @property
    def failed(self) -> int:
        return int(np.count_nonzero(np.isnan(self.response_times)))

    @property
    def events_executed(self) -> int:
        """Events executed across every partition simulator."""
        return int(
            sum(s.get("events_executed", 0) for s in self.pod_summaries.values())
        )

    @property
    def busy_seconds(self) -> float:
        """Summed per-partition replay wall-clock — the useful work.

        With N partitions on ≥N free cores this exceeds
        :attr:`wall_seconds` by roughly the parallel speedup (the
        ``busy_seconds / wall_seconds`` ratio is "cores of useful work").
        """
        return float(
            sum(s.get("wall_seconds", 0.0) for s in self.pod_summaries.values())
        )

    @property
    def events_per_sec(self) -> float:
        """Aggregate simulator throughput of the run."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_executed / self.wall_seconds

    def ok_response_times(self) -> np.ndarray:
        """Response times of successful queries, in merge order."""
        return self.response_times[~np.isnan(self.response_times)]

    def mean_response_time(self) -> float:
        ok = self.ok_response_times()
        return float(np.mean(ok)) if ok.size else float("nan")

    def p99_response_time(self) -> float:
        ok = self.ok_response_times()
        return float(np.percentile(ok, 99)) if ok.size else float("nan")

    def fingerprint(self) -> str:
        """SHA-256 over the merged outcome stream, bit-exact.

        Covers (time, request id, response time, pod) per outcome in the
        deterministic merge order; NaN response times are canonicalised
        to ``-1`` so the digest is well-defined.  Identical for any
        ``partitions`` value — the property the scale golden test and
        the ``scale-smoke`` CI job pin.
        """
        series = np.empty((self.times.size, 4), dtype=np.float64)
        series[:, 0] = self.times
        series[:, 1] = self.request_ids
        series[:, 2] = np.where(
            np.isnan(self.response_times), -1.0, self.response_times
        )
        series[:, 3] = self.pod_indices
        return hashlib.sha256(series.tobytes()).hexdigest()


def run_scale(config: ScaleConfig, partitions: int = 1) -> ScaleRunResult:
    """Execute the partitioned run and merge it into one result.

    ``partitions`` is the number of *worker processes* executing the
    config's pods; it scales wall-clock on multi-core machines and is
    guaranteed not to change results.
    """
    if partitions < 1:
        raise ExperimentError(
            f"partitions must be positive, got {partitions!r}"
        )
    tasks = [
        PartitionTask(index=pod, payload=(config, pod))
        for pod in range(config.pods)
    ]
    start = time.perf_counter()
    outcome = run_partitioned(
        scale_partition_worker, tasks, processes=partitions
    )
    wall_seconds = time.perf_counter() - start

    count = len(outcome.items)
    times = np.empty(count, dtype=np.float64)
    request_ids = np.empty(count, dtype=np.int64)
    response_times = np.empty(count, dtype=np.float64)
    pod_indices = np.empty(count, dtype=np.int64)
    for row, item in enumerate(outcome.items):
        request_id, _sent_at, response_time, _reason = item.payload
        times[row] = item.time
        request_ids[row] = request_id
        response_times[row] = (
            float("nan") if response_time is None else response_time
        )
        pod_indices[row] = item.partition

    pod_summaries = dict(sorted(outcome.summaries.items()))
    # Pods ship their telemetry payloads inside the summary frames; pop
    # them out (the summaries stay plain numbers), merge in pod-index
    # order — deterministic for any ``partitions`` value — and publish
    # one deployment-wide payload for the scenario plumbing to collect.
    pod_payloads = [
        summary.pop("telemetry")
        for summary in pod_summaries.values()
        if "telemetry" in summary
    ]
    if pod_payloads:
        from repro.telemetry import runtime as telemetry_runtime
        from repro.telemetry.bus import TelemetryPayload

        telemetry_runtime.publish(
            "scale", TelemetryPayload.merge(pod_payloads)
        )

    return ScaleRunResult(
        config=config,
        partitions=partitions,
        times=times,
        request_ids=request_ids,
        response_times=response_times,
        pod_indices=pod_indices,
        pod_summaries=pod_summaries,
        wall_seconds=wall_seconds,
    )


@dataclass
class ScaleRunPayload:
    """Picklable form of :class:`ScaleRunResult` (scenario-cell payload)."""

    config: ScaleConfig
    partitions: int
    times: np.ndarray
    request_ids: np.ndarray
    response_times: np.ndarray
    pod_indices: np.ndarray
    pod_summaries: Dict[int, Dict[str, Any]]
    wall_seconds: float

    def to_result(self) -> ScaleRunResult:
        return ScaleRunResult(
            config=self.config,
            partitions=self.partitions,
            times=self.times,
            request_ids=self.request_ids,
            response_times=self.response_times,
            pod_indices=self.pod_indices,
            pod_summaries=self.pod_summaries,
            wall_seconds=self.wall_seconds,
        )


@dataclass
class ScaleResult:
    """Aggregate of a ``scale`` scenario run (a single cell today)."""

    config: ScaleConfig
    run: ScaleRunResult


class ScaleScenario(ScenarioSpec):
    """The partitioned million-client replay as a scenario family."""

    name = "scale"
    title = "Partitioned million-client replay across ECMP pods"

    def default_config(self) -> ScaleConfig:
        return ScaleConfig()

    def smoke_config(self) -> ScaleConfig:
        return ScaleConfig(
            testbed=TestbedConfig(
                num_servers=4, workers_per_server=8, backlog_capacity=16
            ),
            pods=4,
            num_queries=2_000,
            max_windows=8,
        )

    def cells(self, config: ScaleConfig, partitions: int = 1) -> List[ScenarioCell]:
        return [ScenarioCell(key="scale", params={"partitions": partitions})]

    def make_trace(self, config: ScaleConfig, cell: ScenarioCell) -> Trace:
        # The aggregate stream is sharded *inside* the partition workers
        # (each regenerates its own slice); the framework-level trace is
        # intentionally empty.
        return Trace((), name="scale-frontend")

    def build_platform(self, config: ScaleConfig, cell: ScenarioCell) -> Testbed:
        raise ExperimentError(
            "the scale scenario builds one platform per partition inside "
            "its workers; use run_scale()"
        )

    def run_once(
        self, config: ScaleConfig, cell: ScenarioCell, trace: Trace
    ) -> ScaleRunPayload:
        result = run_scale(config, partitions=cell.param("partitions"))
        return ScaleRunPayload(
            config=result.config,
            partitions=result.partitions,
            times=result.times,
            request_ids=result.request_ids,
            response_times=result.response_times,
            pod_indices=result.pod_indices,
            pod_summaries=result.pod_summaries,
            wall_seconds=result.wall_seconds,
        )

    def aggregate(
        self,
        config: ScaleConfig,
        cells: Sequence[ScenarioCell],
        payloads: Sequence[ScaleRunPayload],
        trace_for: TraceProvider,
    ) -> ScaleResult:
        (payload,) = payloads
        return ScaleResult(config=config, run=payload.to_result())

    def render(self, result: ScaleResult) -> str:
        run = result.run
        lines = [
            "scale: partitioned replay "
            f"({result.config.num_queries} queries, {result.config.pods} pods, "
            f"partitions={run.partitions})",
            "",
            f"{'pod':>4} {'queries':>9} {'completed':>9} {'failed':>7} "
            f"{'events':>10} {'wall s':>8}",
        ]
        for pod, summary in run.pod_summaries.items():
            lines.append(
                f"{pod:>4} {summary.get('queries', 0):>9} "
                f"{summary.get('completed', 0):>9} {summary.get('failed', 0):>7} "
                f"{summary.get('events_executed', 0):>10} "
                f"{summary.get('wall_seconds', 0.0):>8.2f}"
            )
        lines.extend(
            [
                "",
                f"aggregate events/sec : {run.events_per_sec:,.0f}",
                f"cores of useful work : {run.busy_seconds / run.wall_seconds:.2f}"
                if run.wall_seconds > 0
                else "cores of useful work : n/a",
                f"mean response        : {run.mean_response_time():.4f} s",
                f"p99 response         : {run.p99_response_time():.4f} s",
                f"fingerprint          : {run.fingerprint()}",
            ]
        )
        return "\n".join(lines)


#: The registered spec instance (also reachable via ``registry.get``).
SCALE_SCENARIO = registry.register(ScaleScenario())


def run_scale_scenario(
    config: Optional[ScaleConfig] = None,
    partitions: int = 1,
    jobs: Optional[int] = 1,
) -> ScaleResult:
    """Scenario-framework front for the ``scale`` family.

    ``jobs`` fans the (single) cell through the sweep runner for API
    symmetry with the other families; ``partitions`` is the intra-run
    parallelism and is forwarded to the partition driver.
    """
    return run_scenario(
        SCALE_SCENARIO, config, jobs=jobs, partitions=partitions
    )
