"""Parallel experiment runner: fan independent runs out over processes.

The paper's evaluation is a grid of *independent, deterministic* runs —
five policies × many load factors for Figure 2, one run per policy for
the Wikipedia replay, one run per candidate-selection scheme for the
resilience family.  Each cell builds its own simulator from a seed, so
nothing is shared between cells and the whole grid parallelises
trivially across processes.  :class:`SweepRunner` is that fan-out: a
thin wrapper around a :mod:`multiprocessing` pool that maps a picklable
*task* description to a picklable *payload* result.

Determinism contract
--------------------
``jobs`` never changes results, only wall-clock time:

* every task carries the full, seeded description of its run (configs
  are frozen dataclasses); workers rebuild the simulator, regenerate the
  workload trace from the seed, and run exactly the same code path as an
  in-process run;
* workers return compact payloads (:mod:`numpy` arrays plus scalars —
  see :class:`~repro.metrics.collector.CollectorPayload`), and the
  parent rebuilds result objects from them; the floats cross the process
  boundary verbatim, so every derived series is bit-for-bit identical;
* ``jobs=1`` does not create a pool at all — it falls back to the exact
  serial in-process path, which is what the determinism tests pin the
  parallel path against.

The experiment entry points (:meth:`PoissonSweep.run
<repro.experiments.poisson_experiment.PoissonSweep.run>`,
:meth:`WikipediaReplay.run
<repro.experiments.wikipedia_experiment.WikipediaReplay.run>` and
:func:`run_resilience_comparison
<repro.experiments.resilience_experiment.run_resilience_comparison>`)
accept a ``jobs`` argument and route through this module; the CLI
exposes it as ``--jobs``.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import ExperimentError

TaskT = TypeVar("TaskT")
PayloadT = TypeVar("PayloadT")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request to a concrete worker count.

    ``None`` and ``0`` both mean "all cores" (``os.cpu_count()``);
    anything below zero is rejected.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ExperimentError(f"jobs must be >= 0, got {jobs!r}")
    return jobs


class SweepRunner:
    """Maps a worker function over independent experiment tasks.

    Parameters
    ----------
    jobs:
        Worker processes to fan out over.  ``1`` runs every task
        in-process (no pool, no pickling); ``None`` or ``0`` uses all
        cores.  Results are returned in task order in every mode.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = resolve_jobs(jobs)

    @property
    def serial(self) -> bool:
        """Whether this runner executes tasks in-process."""
        return self.jobs == 1

    def map(
        self,
        worker: Callable[[TaskT], PayloadT],
        tasks: Sequence[TaskT],
    ) -> List[PayloadT]:
        """Run ``worker`` over every task and return results in order.

        ``worker`` must be a module-level callable and the tasks (and
        results) picklable when ``jobs > 1``; with one task or one job
        everything stays in-process and no pickling happens.
        """
        tasks = list(tasks)
        if self.serial or len(tasks) <= 1:
            return [worker(task) for task in tasks]
        processes = min(self.jobs, len(tasks))
        with multiprocessing.get_context().Pool(processes=processes) as pool:
            return pool.map(worker, tasks)
