"""Poisson-workload experiments (paper §V, Figures 2–5).

The experiment replays a Poisson stream of CPU-bound queries against the
testbed under each load-balancing configuration and collects client-side
response times plus (optionally) the per-server load samples used by
Figure 4.  The *same* workload trace — same arrival times, same
per-request CPU demands — is replayed under every policy of a
comparison, so differences between policies are differences in load
balancing, not in workload randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.calibration import analytic_saturation_rate
from repro.experiments.config import PoissonSweepConfig, PolicySpec, TestbedConfig
from repro.experiments.platform import Testbed, build_testbed
from repro.experiments.runner import SweepRunner
from repro.metrics.collector import (
    CollectorPayload,
    LoadSamplerPayload,
    ResponseTimeCollector,
    ServerLoadSampler,
)
from repro.metrics.stats import SummaryStatistics
from repro.workload.poisson import PoissonWorkload
from repro.workload.requests import RequestCatalog
from repro.workload.service_models import ExponentialServiceTime
from repro.workload.trace import Trace


@dataclass
class PoissonRunResult:
    """Outcome of one (policy, load factor) run."""

    policy: PolicySpec
    load_factor: float
    arrival_rate: float
    collector: ResponseTimeCollector
    load_sampler: Optional[ServerLoadSampler]
    requests_served: int
    connections_reset: int
    acceptance_counts: Dict[str, int]
    simulated_duration: float

    @property
    def mean_response_time(self) -> float:
        """Mean page load time (Figure 2's metric)."""
        return self.collector.mean_response_time()

    @property
    def summary(self) -> SummaryStatistics:
        """Response-time summary statistics."""
        return self.collector.summary()

    def response_times(self) -> List[float]:
        """Raw response times (Figures 3 and 5 plot their CDF)."""
        return self.collector.response_times()

    def export_payload(self) -> "PoissonRunPayload":
        """Compact, picklable export of this run (for the sweep runner)."""
        return PoissonRunPayload(
            policy=self.policy,
            load_factor=self.load_factor,
            arrival_rate=self.arrival_rate,
            collector=self.collector.export_payload(),
            load_sampler=(
                None
                if self.load_sampler is None
                else self.load_sampler.export_payload()
            ),
            requests_served=self.requests_served,
            connections_reset=self.connections_reset,
            acceptance_counts=dict(self.acceptance_counts),
            simulated_duration=self.simulated_duration,
        )


@dataclass
class PoissonRunPayload:
    """Picklable compact form of a :class:`PoissonRunResult`.

    This is what crosses the process boundary when a sweep runs with
    ``jobs > 1``: configs and scalars plus the array-backed collector
    and sampler payloads, instead of live simulator-attached objects.
    """

    policy: PolicySpec
    load_factor: float
    arrival_rate: float
    collector: CollectorPayload
    load_sampler: Optional[LoadSamplerPayload]
    requests_served: int
    connections_reset: int
    acceptance_counts: Dict[str, int]
    simulated_duration: float

    def to_result(self) -> PoissonRunResult:
        """Rebuild the full result object in the parent process."""
        return PoissonRunResult(
            policy=self.policy,
            load_factor=self.load_factor,
            arrival_rate=self.arrival_rate,
            collector=ResponseTimeCollector.from_payload(self.collector),
            load_sampler=(
                None
                if self.load_sampler is None
                else ServerLoadSampler.from_payload(self.load_sampler)
            ),
            requests_served=self.requests_served,
            connections_reset=self.connections_reset,
            acceptance_counts=dict(self.acceptance_counts),
            simulated_duration=self.simulated_duration,
        )


def make_poisson_trace(
    load_factor: float,
    num_queries: int,
    saturation_rate: float,
    service_mean: float,
    workload_seed: int,
) -> Trace:
    """Generate the workload trace for one load factor.

    The RNG is seeded from ``(workload_seed, load factor)`` only, so the
    trace is identical across policies and across testbed seeds.
    """
    if load_factor <= 0:
        raise ExperimentError(f"load factor must be positive, got {load_factor!r}")
    workload = PoissonWorkload.from_load_factor(
        rho=load_factor,
        saturation_rate=saturation_rate,
        num_queries=num_queries,
        service_model=ExponentialServiceTime(service_mean),
    )
    rng = np.random.default_rng([workload_seed, int(round(load_factor * 1_000_000))])
    return workload.generate(rng)


def run_poisson_once(
    testbed_config: TestbedConfig,
    policy: PolicySpec,
    load_factor: float,
    num_queries: int = 20_000,
    service_mean: float = 0.1,
    saturation_rate: Optional[float] = None,
    workload_seed: int = 12_345,
    sample_load: bool = False,
    load_sample_interval: float = 0.5,
    trace: Optional[Trace] = None,
) -> PoissonRunResult:
    """Run one (policy, load factor) experiment and return its results.

    A pre-generated ``trace`` may be passed to share the workload across
    several runs (the sweep does this); otherwise one is generated from
    ``workload_seed``.
    """
    if saturation_rate is None:
        saturation_rate = analytic_saturation_rate(testbed_config, service_mean)
    if trace is None:
        trace = make_poisson_trace(
            load_factor, num_queries, saturation_rate, service_mean, workload_seed
        )

    testbed = build_testbed(
        testbed_config,
        policy,
        catalog=RequestCatalog(),
        run_name=f"{policy.name}-rho{load_factor:g}",
    )
    if sample_load:
        testbed.attach_load_sampler(interval=load_sample_interval)
    duration = testbed.run_trace(trace)

    return PoissonRunResult(
        policy=policy,
        load_factor=load_factor,
        arrival_rate=load_factor * saturation_rate,
        collector=testbed.collector,
        load_sampler=testbed.load_sampler,
        requests_served=testbed.total_requests_served(),
        connections_reset=testbed.total_resets(),
        acceptance_counts=testbed.acceptance_counts(),
        simulated_duration=duration,
    )


@dataclass(frozen=True)
class PoissonCellTask:
    """Self-contained, picklable description of one (policy, ρ) run.

    The workload trace is *not* carried along: the worker regenerates it
    from ``(workload_seed, load_factor)``, which is exactly how the
    serial sweep seeds it, so both paths replay identical workloads.
    """

    testbed: TestbedConfig
    policy: PolicySpec
    load_factor: float
    num_queries: int
    service_mean: float
    saturation_rate: float
    workload_seed: int
    sample_load: bool
    load_sample_interval: float


def _run_poisson_cell(task: PoissonCellTask) -> PoissonRunPayload:
    """Pool worker: run one sweep cell and export its compact payload."""
    result = run_poisson_once(
        task.testbed,
        task.policy,
        task.load_factor,
        num_queries=task.num_queries,
        service_mean=task.service_mean,
        saturation_rate=task.saturation_rate,
        workload_seed=task.workload_seed,
        sample_load=task.sample_load,
        load_sample_interval=task.load_sample_interval,
    )
    return result.export_payload()


@dataclass
class PoissonSweepResult:
    """All runs of a load-factor sweep, indexed by policy then load factor."""

    config: PoissonSweepConfig
    saturation_rate: float
    runs: Dict[str, Dict[float, PoissonRunResult]] = field(default_factory=dict)

    def mean_response_series(self, policy_name: str) -> List[Tuple[float, float]]:
        """``(load factor, mean response time)`` series for one policy."""
        if policy_name not in self.runs:
            raise ExperimentError(f"no runs recorded for policy {policy_name!r}")
        by_load = self.runs[policy_name]
        return [
            (load_factor, by_load[load_factor].mean_response_time)
            for load_factor in sorted(by_load)
        ]

    def policies(self) -> List[str]:
        """Names of the policies in the sweep, in configuration order."""
        return [policy.name for policy in self.config.policies]

    def run(self, policy_name: str, load_factor: float) -> PoissonRunResult:
        """A specific run, by policy name and load factor."""
        try:
            return self.runs[policy_name][load_factor]
        except KeyError as exc:
            raise ExperimentError(
                f"no run for policy {policy_name!r} at load factor {load_factor!r}"
            ) from exc


class PoissonSweep:
    """Full load-factor sweep across the configured policies (Figure 2)."""

    def __init__(self, config: Optional[PoissonSweepConfig] = None) -> None:
        self.config = config or PoissonSweepConfig()

    def run(
        self, sample_load: bool = False, jobs: Optional[int] = 1
    ) -> PoissonSweepResult:
        """Execute every (policy, load factor) combination.

        ``jobs`` fans the independent cells out over a process pool
        (``None``/``0`` = all cores); ``jobs=1`` keeps the historical
        in-process path.  Results are identical for any value — see
        :mod:`repro.experiments.runner` for the determinism contract.
        """
        config = self.config
        saturation = (
            config.saturation_rate
            if config.saturation_rate is not None
            else analytic_saturation_rate(config.testbed, config.service_mean)
        )
        result = PoissonSweepResult(config=config, saturation_rate=saturation)
        runner = SweepRunner(jobs=jobs)
        if runner.serial:
            for load_factor in config.load_factors:
                trace = make_poisson_trace(
                    load_factor,
                    config.num_queries,
                    saturation,
                    config.service_mean,
                    config.workload_seed,
                )
                for policy in config.policies:
                    run = run_poisson_once(
                        config.testbed,
                        policy,
                        load_factor,
                        num_queries=config.num_queries,
                        service_mean=config.service_mean,
                        saturation_rate=saturation,
                        workload_seed=config.workload_seed,
                        sample_load=sample_load,
                        load_sample_interval=config.load_sample_interval,
                        trace=trace,
                    )
                    result.runs.setdefault(policy.name, {})[load_factor] = run
            return result
        tasks = [
            PoissonCellTask(
                testbed=config.testbed,
                policy=policy,
                load_factor=load_factor,
                num_queries=config.num_queries,
                service_mean=config.service_mean,
                saturation_rate=saturation,
                workload_seed=config.workload_seed,
                sample_load=sample_load,
                load_sample_interval=config.load_sample_interval,
            )
            for load_factor in config.load_factors
            for policy in config.policies
        ]
        for task, payload in zip(tasks, runner.map(_run_poisson_cell, tasks)):
            result.runs.setdefault(task.policy.name, {})[
                task.load_factor
            ] = payload.to_result()
        return result
