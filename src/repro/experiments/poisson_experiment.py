"""Poisson-workload experiments (paper §V, Figures 2–5).

The experiment replays a Poisson stream of CPU-bound queries against the
testbed under each load-balancing configuration and collects client-side
response times plus (optionally) the per-server load samples used by
Figure 4.  The *same* workload trace — same arrival times, same
per-request CPU demands — is replayed under every policy of a
comparison, so differences between policies are differences in load
balancing, not in workload randomness.

The sweep is expressed as a :class:`~repro.experiments.scenario.ScenarioSpec`
(one cell per (policy, load factor)); :class:`PoissonSweep` and
:func:`run_poisson_once` are thin entry points over that spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.experiments import registry
from repro.experiments.calibration import analytic_saturation_rate
from repro.experiments.config import PoissonSweepConfig, PolicySpec, TestbedConfig
from repro.experiments.platform import Testbed, build_testbed
from repro.experiments.scenario import (
    ScenarioCell,
    ScenarioSpec,
    TraceProvider,
    run_scenario,
)
from repro.metrics.collector import (
    CollectorPayload,
    LoadSamplerPayload,
    ResponseTimeCollector,
    ServerLoadSampler,
)
from repro.metrics.stats import SummaryStatistics
from repro.workload.poisson import PoissonWorkload
from repro.workload.requests import RequestCatalog
from repro.workload.service_models import ExponentialServiceTime
from repro.workload.trace import Trace


@dataclass
class PoissonRunResult:
    """Outcome of one (policy, load factor) run."""

    policy: PolicySpec
    load_factor: float
    arrival_rate: float
    collector: ResponseTimeCollector
    load_sampler: Optional[ServerLoadSampler]
    requests_served: int
    connections_reset: int
    acceptance_counts: Dict[str, int]
    simulated_duration: float

    @property
    def mean_response_time(self) -> float:
        """Mean page load time (Figure 2's metric)."""
        return self.collector.mean_response_time()

    @property
    def summary(self) -> SummaryStatistics:
        """Response-time summary statistics."""
        return self.collector.summary()

    def response_times(self) -> List[float]:
        """Raw response times (Figures 3 and 5 plot their CDF)."""
        return self.collector.response_times()

    def export_payload(self) -> "PoissonRunPayload":
        """Compact, picklable export of this run (for the scenario runner)."""
        return PoissonRunPayload(
            policy=self.policy,
            load_factor=self.load_factor,
            arrival_rate=self.arrival_rate,
            collector=self.collector.export_payload(),
            load_sampler=(
                None
                if self.load_sampler is None
                else self.load_sampler.export_payload()
            ),
            requests_served=self.requests_served,
            connections_reset=self.connections_reset,
            acceptance_counts=dict(self.acceptance_counts),
            simulated_duration=self.simulated_duration,
        )


@dataclass
class PoissonRunPayload:
    """Picklable compact form of a :class:`PoissonRunResult`.

    This is what crosses the process boundary when a sweep runs with
    ``jobs > 1``: configs and scalars plus the array-backed collector
    and sampler payloads, instead of live simulator-attached objects.
    """

    policy: PolicySpec
    load_factor: float
    arrival_rate: float
    collector: CollectorPayload
    load_sampler: Optional[LoadSamplerPayload]
    requests_served: int
    connections_reset: int
    acceptance_counts: Dict[str, int]
    simulated_duration: float

    def to_result(self) -> PoissonRunResult:
        """Rebuild the full result object in the parent process."""
        return PoissonRunResult(
            policy=self.policy,
            load_factor=self.load_factor,
            arrival_rate=self.arrival_rate,
            collector=ResponseTimeCollector.from_payload(self.collector),
            load_sampler=(
                None
                if self.load_sampler is None
                else ServerLoadSampler.from_payload(self.load_sampler)
            ),
            requests_served=self.requests_served,
            connections_reset=self.connections_reset,
            acceptance_counts=dict(self.acceptance_counts),
            simulated_duration=self.simulated_duration,
        )


def make_poisson_trace(
    load_factor: float,
    num_queries: int,
    saturation_rate: float,
    service_mean: float,
    workload_seed: int,
) -> Trace:
    """Generate the workload trace for one load factor.

    The RNG is seeded from ``(workload_seed, load factor)`` only, so the
    trace is identical across policies and across testbed seeds.
    """
    if load_factor <= 0:
        raise ExperimentError(f"load factor must be positive, got {load_factor!r}")
    workload = PoissonWorkload.from_load_factor(
        rho=load_factor,
        saturation_rate=saturation_rate,
        num_queries=num_queries,
        service_model=ExponentialServiceTime(service_mean),
    )
    rng = np.random.default_rng([workload_seed, int(round(load_factor * 1_000_000))])
    return workload.generate(rng)


@dataclass
class PoissonSweepResult:
    """All runs of a load-factor sweep, indexed by policy then load factor."""

    config: PoissonSweepConfig
    saturation_rate: float
    runs: Dict[str, Dict[float, PoissonRunResult]] = field(default_factory=dict)

    def mean_response_series(self, policy_name: str) -> List[Tuple[float, float]]:
        """``(load factor, mean response time)`` series for one policy."""
        if policy_name not in self.runs:
            raise ExperimentError(f"no runs recorded for policy {policy_name!r}")
        by_load = self.runs[policy_name]
        return [
            (load_factor, by_load[load_factor].mean_response_time)
            for load_factor in sorted(by_load)
        ]

    def policies(self) -> List[str]:
        """Names of the policies in the sweep, in configuration order."""
        return [policy.name for policy in self.config.policies]

    def run(self, policy_name: str, load_factor: float) -> PoissonRunResult:
        """A specific run, by policy name and load factor."""
        try:
            return self.runs[policy_name][load_factor]
        except KeyError as exc:
            raise ExperimentError(
                f"no run for policy {policy_name!r} at load factor {load_factor!r}"
            ) from exc


class PoissonScenario(ScenarioSpec):
    """The load-factor sweep as a declarative scenario (Figure 2)."""

    name = "poisson"
    title = "Poisson load-factor sweep across policies (paper §V, Figures 2–5)"

    def default_config(self) -> PoissonSweepConfig:
        return PoissonSweepConfig()

    def smoke_config(self) -> PoissonSweepConfig:
        from repro.experiments.config import rr_policy, sr_policy

        return PoissonSweepConfig(
            testbed=TestbedConfig(
                num_servers=4, workers_per_server=8, backlog_capacity=16
            ),
            load_factors=(0.5,),
            num_queries=150,
            policies=(rr_policy(), sr_policy(4)),
        )

    def _saturation(self, config: PoissonSweepConfig) -> float:
        if config.saturation_rate is not None:
            return config.saturation_rate
        return analytic_saturation_rate(config.testbed, config.service_mean)

    def cells(
        self, config: PoissonSweepConfig, sample_load: bool = False
    ) -> List[ScenarioCell]:
        saturation = self._saturation(config)
        return [
            ScenarioCell(
                key=(policy.name, load_factor),
                params={
                    "policy": policy,
                    "load_factor": load_factor,
                    "saturation_rate": saturation,
                    "sample_load": sample_load,
                },
            )
            for load_factor in config.load_factors
            for policy in config.policies
        ]

    def trace_key(self, config: PoissonSweepConfig, cell: ScenarioCell) -> float:
        # Every policy replays the same trace at a given load factor.
        return cell.param("load_factor")

    def make_trace(self, config: PoissonSweepConfig, cell: ScenarioCell) -> Trace:
        return make_poisson_trace(
            cell.param("load_factor"),
            config.num_queries,
            cell.param("saturation_rate"),
            config.service_mean,
            config.workload_seed,
        )

    def build_platform(
        self, config: PoissonSweepConfig, cell: ScenarioCell
    ) -> Testbed:
        policy = cell.param("policy")
        return build_testbed(
            config.testbed,
            policy,
            catalog=RequestCatalog(),
            run_name=f"{policy.name}-rho{cell.param('load_factor'):g}",
        )

    def run_once(
        self, config: PoissonSweepConfig, cell: ScenarioCell, trace: Trace
    ) -> PoissonRunPayload:
        testbed = self.build_platform(config, cell)
        if cell.param("sample_load"):
            testbed.attach_load_sampler(interval=config.load_sample_interval)
        duration = testbed.run_trace(trace)
        result = PoissonRunResult(
            policy=cell.param("policy"),
            load_factor=cell.param("load_factor"),
            arrival_rate=cell.param("load_factor") * cell.param("saturation_rate"),
            collector=testbed.collector,
            load_sampler=testbed.load_sampler,
            requests_served=testbed.total_requests_served(),
            connections_reset=testbed.total_resets(),
            acceptance_counts=testbed.acceptance_counts(),
            simulated_duration=duration,
        )
        return result.export_payload()

    def aggregate(
        self,
        config: PoissonSweepConfig,
        cells: Sequence[ScenarioCell],
        payloads: Sequence[PoissonRunPayload],
        trace_for: TraceProvider,
    ) -> PoissonSweepResult:
        result = PoissonSweepResult(
            config=config, saturation_rate=cells[0].param("saturation_rate")
        )
        for payload in payloads:
            result.runs.setdefault(payload.policy.name, {})[
                payload.load_factor
            ] = payload.to_result()
        return result

    def render(self, result: PoissonSweepResult) -> str:
        from repro.experiments import figures

        return figures.render_figure2(result)


#: The registered spec instance (also reachable via ``registry.get``).
POISSON_SCENARIO = registry.register(PoissonScenario())


def run_poisson_once(
    testbed_config: TestbedConfig,
    policy: PolicySpec,
    load_factor: float,
    num_queries: int = 20_000,
    service_mean: float = 0.1,
    saturation_rate: Optional[float] = None,
    workload_seed: int = 12_345,
    sample_load: bool = False,
    load_sample_interval: float = 0.5,
    trace: Optional[Trace] = None,
) -> PoissonRunResult:
    """Run one (policy, load factor) experiment and return its results.

    A pre-generated ``trace`` may be passed to share the workload across
    several runs (the sweep does this); otherwise one is generated from
    ``workload_seed``.  This is a convenience front over a one-cell
    :class:`PoissonScenario` run.
    """
    if load_factor <= 0:
        raise ExperimentError(f"load factor must be positive, got {load_factor!r}")
    if saturation_rate is None:
        saturation_rate = analytic_saturation_rate(testbed_config, service_mean)
    config = PoissonSweepConfig(
        testbed=testbed_config,
        load_factors=(load_factor,),
        num_queries=num_queries,
        service_mean=service_mean,
        policies=(policy,),
        saturation_rate=saturation_rate,
        load_sample_interval=load_sample_interval,
        workload_seed=workload_seed,
    )
    (cell,) = POISSON_SCENARIO.cells(config, sample_load=sample_load)
    if trace is None:
        trace = POISSON_SCENARIO.make_trace(config, cell)
    return POISSON_SCENARIO.run_once(config, cell, trace).to_result()


class PoissonSweep:
    """Full load-factor sweep across the configured policies (Figure 2)."""

    def __init__(self, config: Optional[PoissonSweepConfig] = None) -> None:
        self.config = config or PoissonSweepConfig()

    def run(
        self, sample_load: bool = False, jobs: Optional[int] = 1
    ) -> PoissonSweepResult:
        """Execute every (policy, load factor) combination.

        ``jobs`` fans the independent cells out over a process pool
        (``None``/``0`` = all cores); ``jobs=1`` keeps the historical
        in-process path.  Results are identical for any value — see
        :mod:`repro.experiments.runner` for the determinism contract.
        """
        return run_scenario(
            POISSON_SCENARIO, self.config, jobs=jobs, sample_load=sample_load
        )
