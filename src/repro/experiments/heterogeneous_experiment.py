"""Heterogeneous-fleet experiments: mixed server service-rate tiers.

The paper's platform is twelve identical servers; real fleets are not.
This family splits the fleet into a *fast* tier and a *slow* tier of
CPU speed multipliers (:attr:`TestbedConfig.server_speed_factors`) and
replays the same Poisson workload — normalised against the fleet's
speed-weighted capacity — under each policy.

What it stresses: Service Hunting's acceptance policies observe the
local busy-*thread* count, not the local service *rate*.  A slow server
with c-1 busy threads looks exactly as acceptable as a fast one, yet
will hold its queries far longer — so queue-length-blind policies pile
work onto the slow tier.  The scenario reports, next to response times,
how each policy's accepted queries split between the tiers relative to
the capacity each tier brings (a share ratio of 1.0 means
capacity-proportional, i.e. perfectly fair), plus Jain's fairness index
over per-capacity acceptance rates.

The family is registered as the ``heterogeneous-fleet`` scenario; cells
are (policy, load factor) pairs and the per-cell payload reuses the
Poisson family's compact payload (the measured quantities coincide).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments import registry
from repro.experiments.calibration import analytic_saturation_rate
from repro.experiments.config import HeterogeneousFleetConfig
from repro.experiments.platform import Testbed, build_testbed
from repro.experiments.scenario import (
    ScenarioCell,
    ScenarioResult,
    ScenarioSpec,
    TraceProvider,
)
from repro.metrics.fairness import jain_fairness_index
from repro.metrics.reporting import format_table
from repro.workload.poisson import PoissonWorkload
from repro.workload.requests import RequestCatalog
from repro.workload.service_models import ExponentialServiceTime
from repro.workload.trace import Trace


def heterogeneous_saturation_rate(config: HeterogeneousFleetConfig) -> float:
    """The λ₀ the load factors are normalised against (speed-weighted)."""
    if config.saturation_rate is not None:
        return config.saturation_rate
    return analytic_saturation_rate(config.testbed, config.service_mean)


def make_heterogeneous_trace(
    config: HeterogeneousFleetConfig, load_factor: float
) -> Trace:
    """The trace replayed by every policy at one load factor."""
    workload = PoissonWorkload.from_load_factor(
        rho=load_factor,
        saturation_rate=heterogeneous_saturation_rate(config),
        num_queries=config.num_queries,
        service_model=ExponentialServiceTime(config.service_mean),
    )
    rng = np.random.default_rng(
        [config.workload_seed, int(round(load_factor * 1_000_000))]
    )
    return workload.generate(rng)


def tier_acceptance_shares(
    config: HeterogeneousFleetConfig, acceptance_counts: Dict[str, int]
) -> Tuple[float, float]:
    """``(fast share ratio, slow share ratio)`` of accepted queries.

    Each ratio is the tier's share of accepted queries divided by its
    share of fleet capacity; 1.0 on both sides means the policy feeds
    each tier exactly in proportion to what it can digest.
    """
    fast_names = set(config.fast_server_names())
    accepted_fast = sum(
        count for name, count in acceptance_counts.items() if name in fast_names
    )
    accepted_total = sum(acceptance_counts.values())
    if accepted_total == 0:
        return (0.0, 0.0)
    capacity_fast = config.num_fast * config.fast_speed
    capacity_total = capacity_fast + config.num_slow * config.slow_speed
    fast_share = (accepted_fast / accepted_total) / (capacity_fast / capacity_total)
    slow_share = ((accepted_total - accepted_fast) / accepted_total) / (
        (capacity_total - capacity_fast) / capacity_total
    )
    return (fast_share, slow_share)


def capacity_fairness_index(
    config: HeterogeneousFleetConfig, acceptance_counts: Dict[str, int]
) -> float:
    """Jain's index over per-server accepted queries per unit capacity."""
    speeds = config.testbed.server_speed_factors
    loads = [
        acceptance_counts.get(f"server-{index}", 0) / speeds[index]
        for index in range(config.num_servers)
    ]
    return jain_fairness_index(loads)


class HeterogeneousFleetScenario(ScenarioSpec):
    """The mixed-speed-fleet comparison as a declarative scenario."""

    name = "heterogeneous-fleet"
    title = "Mixed fast/slow server tiers: SR fairness per unit capacity"

    def default_config(self) -> HeterogeneousFleetConfig:
        return HeterogeneousFleetConfig()

    def smoke_config(self) -> HeterogeneousFleetConfig:
        from repro.experiments.config import rr_policy, sr_policy

        return HeterogeneousFleetConfig(
            num_fast=2,
            num_slow=3,
            workers_per_server=8,
            backlog_capacity=16,
            load_factors=(0.7,),
            num_queries=200,
            policies=(rr_policy(), sr_policy(4)),
        )

    def cells(self, config: HeterogeneousFleetConfig) -> List[ScenarioCell]:
        return [
            ScenarioCell(
                key=(policy.name, load_factor),
                params={"policy": policy, "load_factor": load_factor},
            )
            for load_factor in config.load_factors
            for policy in config.policies
        ]

    def trace_key(
        self, config: HeterogeneousFleetConfig, cell: ScenarioCell
    ) -> float:
        return cell.param("load_factor")

    def make_trace(
        self, config: HeterogeneousFleetConfig, cell: ScenarioCell
    ) -> Trace:
        return make_heterogeneous_trace(config, cell.param("load_factor"))

    def build_platform(
        self, config: HeterogeneousFleetConfig, cell: ScenarioCell
    ) -> Testbed:
        policy = cell.param("policy")
        return build_testbed(
            config.testbed,
            policy,
            catalog=RequestCatalog(),
            run_name=f"heterogeneous-{policy.name}-rho{cell.param('load_factor'):g}",
        )

    def run_once(
        self, config: HeterogeneousFleetConfig, cell: ScenarioCell, trace: Trace
    ):
        # The measured quantities coincide with the Poisson family's, so
        # the compact payload is shared rather than re-invented.
        from repro.experiments.poisson_experiment import PoissonRunResult

        testbed = self.build_platform(config, cell)
        duration = testbed.run_trace(trace)
        result = PoissonRunResult(
            policy=cell.param("policy"),
            load_factor=cell.param("load_factor"),
            arrival_rate=cell.param("load_factor")
            * heterogeneous_saturation_rate(config),
            collector=testbed.collector,
            load_sampler=None,
            requests_served=testbed.total_requests_served(),
            connections_reset=testbed.total_resets(),
            acceptance_counts=testbed.acceptance_counts(),
            simulated_duration=duration,
        )
        return result.export_payload()

    def aggregate(
        self,
        config: HeterogeneousFleetConfig,
        cells: Sequence[ScenarioCell],
        payloads: Sequence,
        trace_for: TraceProvider,
    ) -> ScenarioResult:
        result = ScenarioResult(
            scenario=self.name,
            config=config,
            meta={
                "saturation_rate": heterogeneous_saturation_rate(config),
                "fast_servers": list(config.fast_server_names()),
            },
        )
        for payload in payloads:
            result.runs[(payload.policy.name, payload.load_factor)] = (
                payload.to_result()
            )
        return result

    def render(self, result: ScenarioResult) -> str:
        return render_heterogeneous_fleet(result)


#: The registered spec instance (also reachable via ``registry.get``).
HETEROGENEOUS_SCENARIO = registry.register(HeterogeneousFleetScenario())


def run_heterogeneous_fleet(
    config: Optional[HeterogeneousFleetConfig] = None, jobs: Optional[int] = 1
) -> ScenarioResult:
    """Replay the capacity-normalised workload under every policy."""
    from repro.experiments.scenario import run_scenario

    return run_scenario(HETEROGENEOUS_SCENARIO, config, jobs=jobs)


def render_heterogeneous_fleet(result: ScenarioResult) -> str:
    """Response times plus tier shares and fairness, per (policy, ρ)."""
    config: HeterogeneousFleetConfig = result.config
    rows: List[List[object]] = []
    for key in result.keys():
        policy_name, load_factor = key
        run = result.run(key)
        summary = run.summary
        fast_share, slow_share = tier_acceptance_shares(
            config, run.acceptance_counts
        )
        rows.append(
            [
                load_factor,
                policy_name,
                summary.mean,
                summary.p90,
                f"{fast_share:.2f}",
                f"{slow_share:.2f}",
                f"{capacity_fairness_index(config, run.acceptance_counts):.3f}",
                run.connections_reset,
            ]
        )
    return format_table(
        [
            "rho",
            "policy",
            "mean (s)",
            "p90 (s)",
            "fast share",
            "slow share",
            "fairness",
            "resets",
        ],
        rows,
        title=(
            f"Heterogeneous fleet: {config.num_fast} fast (x{config.fast_speed:g}) "
            f"+ {config.num_slow} slow (x{config.slow_speed:g}) servers, "
            f"{config.num_queries} queries per run"
        ),
    )
