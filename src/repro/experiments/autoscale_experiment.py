"""Autoscale experiments: elastic capacity under a diurnal workload.

The paper evaluates Service Hunting over a fixed twelve-server pool;
production deployments of the same architecture pair it with an elastic
control plane.  This family quantifies what that control plane buys: a
diurnal (sinusoid-plus-noise) arrival schedule is replayed under several
*provisioning modes* —

* ``static`` — the fleet is pinned at ``max_servers`` (peak-sized
  over-provisioning, the no-control-plane baseline);
* ``reactive`` — the fleet starts at ``min_servers`` and a threshold
  autoscaler (:mod:`repro.control`) tracks the load;
* ``predictive`` — same, with the EWMA-slope forecasting policy that
  provisions ahead of the ramp;

— and each run reports **cost** (capacity-seconds, the integral of
provisioned speed-weighted cores over the day) against **SLO** (p99
response time vs the configured target).  The headline claim mirrors
what elasticity is for: the scaled fleets spend materially fewer
capacity-seconds than the static one while keeping p99 inside the SLO.

The family is registered as the ``autoscale`` scenario; cells are the
provisioning modes, and every mode replays the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.control.autoscaler import Autoscaler
from repro.control.lifecycle import ServerLifecycle
from repro.control.monitor import FleetMonitor
from repro.control.policy import make_scaling_policy
from repro.experiments import registry
from repro.experiments.calibration import analytic_saturation_rate
from repro.experiments.config import AutoscaleConfig
from repro.experiments.platform import Testbed, build_testbed
from repro.experiments.scenario import (
    ScenarioCell,
    ScenarioResult,
    ScenarioSpec,
    TraceProvider,
)
from repro.metrics.capacity import CapacityPayload, CapacityTracker
from repro.metrics.collector import CollectorPayload, ResponseTimeCollector
from repro.metrics.reporting import format_table
from repro.metrics.stats import SummaryStatistics
from repro.workload.diurnal import DiurnalWorkload
from repro.workload.requests import RequestCatalog
from repro.workload.service_models import ExponentialServiceTime
from repro.workload.trace import Trace


def autoscale_saturation_rate(config: AutoscaleConfig) -> float:
    """The λ₀ the diurnal load factors are normalised against (max fleet)."""
    if config.saturation_rate is not None:
        return config.saturation_rate
    return analytic_saturation_rate(config.max_testbed, config.service_mean)


def make_diurnal_workload(config: AutoscaleConfig) -> DiurnalWorkload:
    """The diurnal rate schedule described by ``config``."""
    saturation = autoscale_saturation_rate(config)
    return DiurnalWorkload(
        mean_rate=config.mean_load * saturation,
        amplitude=config.load_amplitude * saturation,
        period=config.period,
        duration=config.duration,
        num_steps=config.num_steps,
        noise=config.rate_noise,
        service_model=ExponentialServiceTime(config.service_mean),
    )


def make_diurnal_trace(config: AutoscaleConfig) -> Trace:
    """The diurnal trace shared by every provisioning mode."""
    workload = make_diurnal_workload(config)
    rng = np.random.default_rng([config.workload_seed, config.num_steps])
    return workload.generate(rng)


@dataclass
class AutoscaleRunResult:
    """Outcome of replaying the diurnal trace under one provisioning mode."""

    mode: str
    config: AutoscaleConfig
    collector: ResponseTimeCollector
    capacity: CapacityTracker
    #: ``(time, raw busy fraction, smoothed busy fraction, serving servers)``
    #: rows from the fleet monitor (empty for the static mode).
    monitor_series: List[Tuple[float, float, float, int]]
    requests_served: int
    connections_reset: int
    simulated_duration: float

    @property
    def capacity_seconds(self) -> float:
        """Provisioned capacity integrated over the arrival phase."""
        return self.capacity.capacity_seconds(through=self.config.duration)

    @property
    def mean_servers(self) -> float:
        """Time-averaged provisioned server count over the day."""
        return self.capacity.mean_capacity(
            through=self.config.duration
        ) / self.config.cores_per_server

    @property
    def summary(self) -> SummaryStatistics:
        """Response-time summary of the completed queries."""
        return self.collector.summary()

    @property
    def p99(self) -> float:
        """The SLO-facing percentile."""
        return self.summary.p99

    @property
    def meets_slo(self) -> bool:
        """Whether the run's p99 stayed inside the configured target."""
        return self.p99 <= self.config.slo_p99

    def mean_drain_duration(self) -> Optional[float]:
        """Mean graceful-drain duration, or ``None`` without any drain."""
        drains = self.capacity.drain_durations
        if not drains:
            return None
        return sum(drains) / len(drains)

    def export_payload(self) -> "AutoscaleRunPayload":
        """Compact, picklable export of this run (for the scenario runner)."""
        return AutoscaleRunPayload(
            mode=self.mode,
            config=self.config,
            collector=self.collector.export_payload(),
            capacity=self.capacity.export_payload(),
            monitor_series=list(self.monitor_series),
            requests_served=self.requests_served,
            connections_reset=self.connections_reset,
            simulated_duration=self.simulated_duration,
        )


@dataclass
class AutoscaleRunPayload:
    """Picklable compact form of an :class:`AutoscaleRunResult`."""

    mode: str
    config: AutoscaleConfig
    collector: CollectorPayload
    capacity: CapacityPayload
    monitor_series: List[Tuple[float, float, float, int]]
    requests_served: int
    connections_reset: int
    simulated_duration: float

    def to_result(self) -> AutoscaleRunResult:
        """Rebuild the full result object in the parent process."""
        return AutoscaleRunResult(
            mode=self.mode,
            config=self.config,
            collector=ResponseTimeCollector.from_payload(self.collector),
            capacity=CapacityTracker.from_payload(self.capacity),
            monitor_series=list(self.monitor_series),
            requests_served=self.requests_served,
            connections_reset=self.connections_reset,
            simulated_duration=self.simulated_duration,
        )


def attach_control_plane(testbed: Testbed, config: AutoscaleConfig, mode: str):
    """Wire monitor → policy → lifecycle → autoscaler onto ``testbed``.

    Returns the started :class:`~repro.control.autoscaler.Autoscaler`;
    its stop is registered on the testbed's arrival horizon so the
    control loop cannot keep the event heap alive after the day ends.
    """
    lifecycle = ServerLifecycle(
        testbed,
        provisioning_delay=config.provisioning_delay,
        warmup_duration=config.warmup_duration,
        warmup_speed=config.warmup_speed,
        drain_check_interval=config.drain_check_interval,
    )
    # Under telemetry, the autoscaler observes the fleet through a
    # monitor that also streams its samples onto the bus; the returned
    # samples are identical, so scaling decisions do not move.
    if testbed.telemetry is not None:
        monitor = testbed.telemetry.fleet_monitor(config.ewma_time_constant)
    else:
        monitor = FleetMonitor(time_constant=config.ewma_time_constant)
    policy = make_scaling_policy(
        mode,
        low=config.scale_down_fraction,
        high=config.scale_up_fraction,
        horizon=config.prediction_horizon,
        slope_time_constant=config.slope_time_constant,
    )
    autoscaler = Autoscaler(
        lifecycle=lifecycle,
        monitor=monitor,
        policy=policy,
        min_servers=config.min_servers,
        max_servers=config.max_servers,
        interval=config.monitor_interval,
        scale_up_cooldown=config.scale_up_cooldown,
        scale_down_cooldown=config.scale_down_cooldown,
    )
    autoscaler.start(first_delay=config.monitor_interval)
    testbed.at_horizon(autoscaler.stop)
    return autoscaler


class AutoscaleScenario(ScenarioSpec):
    """The elastic-vs-static comparison as a declarative scenario."""

    name = "autoscale"
    title = "Elastic control plane vs static provisioning under diurnal load"

    def default_config(self) -> AutoscaleConfig:
        return AutoscaleConfig()

    def smoke_config(self) -> AutoscaleConfig:
        return AutoscaleConfig(
            workers_per_server=8,
            cores_per_server=1,
            backlog_capacity=16,
            min_servers=2,
            max_servers=5,
            mean_load=0.5,
            load_amplitude=0.35,
            period=100.0,
            duration=100.0,
            num_steps=40,
            rate_noise=0.05,
            monitor_interval=0.5,
            ewma_time_constant=2.5,
            scale_up_fraction=0.22,
            scale_down_fraction=0.08,
            scale_up_cooldown=2.0,
            scale_down_cooldown=6.0,
            provisioning_delay=3.0,
            warmup_duration=3.0,
            prediction_horizon=8.0,
            # The peak sits at rho 0.85 of the full fleet on single-core
            # PS servers, so even the static baseline's p99 is ~2.2 s;
            # the SLO must sit above what peak-sized capacity delivers.
            slo_p99=3.0,
        )

    def cells(self, config: AutoscaleConfig) -> List[ScenarioCell]:
        return [
            ScenarioCell(key=mode, params={"mode": mode})
            for mode in config.modes
        ]

    # trace_key: the default (one shared trace for every mode).

    def make_trace(self, config: AutoscaleConfig, cell: ScenarioCell) -> Trace:
        return make_diurnal_trace(config)

    def build_platform(self, config: AutoscaleConfig, cell: ScenarioCell) -> Testbed:
        mode = cell.param("mode")
        return build_testbed(
            config.testbed_for(mode),
            config.policy,
            catalog=RequestCatalog(),
            run_name=f"autoscale-{mode}",
        )

    def run_once(
        self, config: AutoscaleConfig, cell: ScenarioCell, trace: Trace
    ) -> AutoscaleRunPayload:
        mode = cell.param("mode")
        testbed = self.build_platform(config, cell)
        autoscaler = None
        if mode == "static":
            # No control plane: a constant-capacity tracker records the
            # bill the peak-sized fleet runs up.
            capacity = CapacityTracker(
                start_time=testbed.simulator.now,
                capacity=float(config.max_servers * config.cores_per_server),
            )
        else:
            autoscaler = attach_control_plane(testbed, config, mode)
            capacity = autoscaler.lifecycle.capacity
        duration = testbed.run_trace(trace)
        monitor_series = (
            []
            if autoscaler is None
            else [
                (
                    sample.time,
                    sample.busy_fraction,
                    sample.smoothed_busy_fraction,
                    sample.serving_servers,
                )
                for sample in autoscaler.monitor.samples()
            ]
        )
        result = AutoscaleRunResult(
            mode=mode,
            config=config,
            collector=testbed.collector,
            capacity=capacity,
            monitor_series=monitor_series,
            requests_served=testbed.total_requests_served(),
            connections_reset=testbed.total_resets(),
            simulated_duration=duration,
        )
        return result.export_payload()

    def aggregate(
        self,
        config: AutoscaleConfig,
        cells: Sequence[ScenarioCell],
        payloads: Sequence[AutoscaleRunPayload],
        trace_for: TraceProvider,
    ) -> ScenarioResult:
        result = ScenarioResult(
            scenario=self.name,
            config=config,
            meta={
                "saturation_rate": autoscale_saturation_rate(config),
                "slo_p99": config.slo_p99,
                "duration": config.duration,
            },
        )
        for payload in payloads:
            result.runs[payload.mode] = payload.to_result()
        return result

    def render(self, result: ScenarioResult) -> str:
        return render_autoscale(result)


#: The registered spec instance (also reachable via ``registry.get``).
AUTOSCALE_SCENARIO = registry.register(AutoscaleScenario())


def run_autoscale(
    config: Optional[AutoscaleConfig] = None, jobs: Optional[int] = 1
) -> ScenarioResult:
    """Replay the diurnal trace under every configured provisioning mode."""
    from repro.experiments.scenario import run_scenario

    return run_scenario(AUTOSCALE_SCENARIO, config, jobs=jobs)


def _capacity_at(series: List[Tuple[float, float]], time: float) -> float:
    """Value of a capacity step function at ``time``."""
    value = series[0][1]
    for step_time, step_value in series:
        if step_time > time:
            break
        value = step_value
    return value


def render_autoscale(result: ScenarioResult) -> str:
    """Cost-vs-SLO summary plus the fleet-size trajectory per mode."""
    config: AutoscaleConfig = result.config
    rows: List[List[object]] = []
    for mode in result.keys():
        run: AutoscaleRunResult = result.run(mode)
        summary = run.summary
        drain = run.mean_drain_duration()
        rows.append(
            [
                mode,
                f"{run.capacity_seconds:.0f}",
                f"{run.mean_servers:.2f}",
                run.capacity.scale_ups(),
                run.capacity.scale_downs(),
                "-" if drain is None else f"{drain:.2f}",
                summary.mean,
                summary.p99,
                "yes" if run.meets_slo else "NO",
                run.connections_reset,
            ]
        )
    summary_table = format_table(
        [
            "mode",
            "capacity-s",
            "mean servers",
            "ups",
            "downs",
            "drain (s)",
            "mean (s)",
            "p99 (s)",
            f"p99<={config.slo_p99:g}s",
            "resets",
        ],
        rows,
        title=(
            f"Autoscale: diurnal load {config.mean_load:g}±{config.load_amplitude:g} "
            f"of a {config.max_servers}-server fleet over {config.duration:g}s "
            f"(bounds [{config.min_servers}, {config.max_servers}])"
        ),
    )

    workload = make_diurnal_workload(config)
    cores = config.cores_per_server
    capacity_series = {
        mode: result.run(mode).capacity.series() for mode in result.keys()
    }
    points = 12
    trajectory_rows: List[List[object]] = []
    for index in range(points + 1):
        time = config.duration * index / points
        row: List[object] = [f"{time:.0f}", f"{workload.rate_at(time):.1f}"]
        for mode in result.keys():
            row.append(
                f"{_capacity_at(capacity_series[mode], time) / cores:.1f}"
            )
        trajectory_rows.append(row)
    trajectory_table = format_table(
        ["time (s)", "offered (q/s)"]
        + [f"{mode} servers" for mode in result.keys()],
        trajectory_rows,
        title="Autoscale: provisioned servers vs the diurnal rate",
    )
    return summary_table + "\n\n" + trajectory_table
