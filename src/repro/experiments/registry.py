"""Scenario registry: the single catalogue of experiment families.

Every :class:`~repro.experiments.scenario.ScenarioSpec` registers itself
here at import time; the CLI, the figure renderers, and the scenario
driver all iterate this registry instead of hard-coding the families.
Adding a workload family is therefore: write a spec module, call
:func:`register` at its bottom, add it to :data:`_BUILTIN_MODULES` (or
import it yourself) — the sub-command table, ``srlb-repro scenarios``
listing, and figure smoke tests pick it up automatically.

Built-in family modules are imported lazily on first lookup, so
``registry.get`` works inside pool workers regardless of the
multiprocessing start method (a spawned worker has not imported the
family modules yet when it unpickles its first task).
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Dict, List

from repro.errors import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.scenario import ScenarioSpec

#: Modules whose import registers the built-in scenario families.
_BUILTIN_MODULES = (
    "repro.experiments.poisson_experiment",
    "repro.experiments.wikipedia_experiment",
    "repro.experiments.resilience_experiment",
    "repro.experiments.flash_crowd_experiment",
    "repro.experiments.heterogeneous_experiment",
    "repro.experiments.autoscale_experiment",
    "repro.experiments.heavy_tail_experiment",
    "repro.experiments.adversarial_experiment",
    "repro.experiments.scale_experiment",
    "repro.experiments.chaos_experiment",
)

_SCENARIOS: Dict[str, "ScenarioSpec"] = {}
_builtins_loaded = False


def register(spec: "ScenarioSpec") -> "ScenarioSpec":
    """Register a scenario spec under its ``name``; returns the spec.

    Re-registering the *same* spec object is a no-op (modules may be
    imported through several paths); a different spec under a taken name
    is rejected loudly.
    """
    if not spec.name:
        raise ExperimentError(f"scenario spec {spec!r} needs a non-empty name")
    existing = _SCENARIOS.get(spec.name)
    if existing is not None and existing is not spec:
        raise ExperimentError(
            f"scenario name {spec.name!r} is already registered by {existing!r}"
        )
    _SCENARIOS[spec.name] = spec
    return spec


def _ensure_builtins_loaded() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    # Flag success only after every family imported: a failed import is
    # retried (and re-raises its real cause) on the next lookup instead
    # of leaving later callers with a misleading partial registry.
    _builtins_loaded = True


def get(name: str) -> "ScenarioSpec":
    """The registered spec called ``name`` (loud when unknown)."""
    _ensure_builtins_loaded()
    try:
        return _SCENARIOS[name]
    except KeyError as exc:
        known = ", ".join(sorted(_SCENARIOS)) or "none"
        raise ExperimentError(
            f"unknown scenario {name!r}: registered scenarios are {known}"
        ) from exc


def names() -> List[str]:
    """Registered scenario names, in registration order."""
    _ensure_builtins_loaded()
    return list(_SCENARIOS)


def specs() -> List["ScenarioSpec"]:
    """Registered specs, in registration order."""
    _ensure_builtins_loaded()
    return list(_SCENARIOS.values())
