"""Testbed builder: wires the full experimental platform together.

One call to :func:`build_testbed` reproduces the paper's platform (§IV):
a traffic generator and a load balancer on one side, twelve application
servers on the other, all bridged on the same link, with the VIP
advertised by the load balancer and every server running the Service
Hunting virtual router in front of its Apache instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.candidate_selection import CandidateSelector, make_selector
from repro.core.lb_tier import LoadBalancerTier
from repro.core.loadbalancer import LoadBalancerNode
from repro.core.policies import ConnectionAcceptancePolicy, make_policy
from repro.errors import WorkloadError
from repro.experiments.config import PolicySpec, TestbedConfig
from repro.metrics.collector import ResponseTimeCollector, ServerLoadSampler
from repro.net.addressing import IPv6Address, default_allocators
from repro.net.channel import PooledInProcessChannel
from repro.net.fabric import LANFabric
from repro.net.packet import PacketPool
from repro.server.cpu import make_cpu
from repro.server.http_server import HTTPServerInstance
from repro.server.virtual_router import ServerNode
from repro.sim.engine import PeriodicTask, Simulator
from repro.telemetry.probe import attach_telemetry
from repro.telemetry.runtime import telemetry_enabled
from repro.workload.client import TrafficGeneratorNode
from repro.workload.requests import RequestCatalog
from repro.workload.trace import Trace

#: Builds one acceptance-policy instance per server.
PolicyFactory = Callable[[], ConnectionAcceptancePolicy]


def _build_server(
    simulator: Simulator,
    fabric: LANFabric,
    config: TestbedConfig,
    policy_spec: PolicySpec,
    catalog: RequestCatalog,
    index: int,
    address: IPv6Address,
    speed: float,
    steering_address: IPv6Address,
    vip: IPv6Address,
    packet_pool: Optional[PacketPool] = None,
) -> ServerNode:
    """One fully wired application server (CPU, app, policy, VIP, fabric).

    The single construction recipe shared by :func:`build_testbed`'s
    initial fleet and :meth:`Testbed.add_server`'s elastic additions —
    so a mid-run server can never silently diverge from the fleet it
    joins.
    """
    cpu = make_cpu(
        simulator,
        num_cores=config.cores_per_server,
        model=config.cpu_model,
        name=f"cpu-{index}",
        speed=speed,
    )
    app = HTTPServerInstance(
        simulator=simulator,
        name=f"apache-{index}",
        cpu=cpu,
        num_workers=config.workers_per_server,
        backlog_capacity=config.backlog_capacity,
        demand_lookup=catalog.demand_of,
        abort_on_overflow=config.abort_on_overflow,
        request_timeout=config.request_timeout or None,
        shed_watermark=config.backlog_shed_watermark or None,
    )
    server = ServerNode(
        simulator=simulator,
        name=f"server-{index}",
        address=address,
        app=app,
        policy=make_policy(policy_spec.acceptance_policy),
        load_balancer_address=steering_address,
        cpu_cores=config.cores_per_server,
    )
    server.bind_vip(vip)
    server.attach(fabric)
    if packet_pool is not None:
        server.packet_pool = packet_pool
    return server


@dataclass
class Testbed:
    """All the moving parts of one experiment run."""

    config: TestbedConfig
    policy_spec: PolicySpec
    simulator: Simulator
    fabric: LANFabric
    #: The single load balancer — or, in tier deployments
    #: (``num_load_balancers > 1``), the tier's first instance; use
    #: :attr:`lb_tier` for tier-wide operations.
    load_balancer: LoadBalancerNode
    servers: List[ServerNode]
    client: TrafficGeneratorNode
    vip: IPv6Address
    catalog: RequestCatalog
    collector: ResponseTimeCollector
    #: Present when the testbed fronts the servers with an ECMP
    #: load-balancer tier instead of a single instance.
    lb_tier: Optional[LoadBalancerTier] = None
    load_sampler: Optional[ServerLoadSampler] = None
    #: Streaming telemetry probe, attached by :func:`build_testbed` when
    #: :func:`repro.telemetry.runtime.telemetry_enabled` is true (see
    #: :mod:`repro.telemetry.probe`).  ``None`` on ordinary runs —
    #: telemetry is strictly opt-in.
    telemetry: Optional[object] = field(default=None, repr=False)
    #: The fault-injection pipeline when one is installed on the fabric
    #: (the chaos family sets this), so the telemetry probe can stream
    #: its per-reason drop counters.
    fault_pipeline: Optional[object] = field(default=None, repr=False)
    _sampler_task: Optional[PeriodicTask] = field(default=None, repr=False)
    #: Allocator the server addresses were drawn from; the elastic
    #: control plane allocates mid-run additions from the same sequence.
    server_allocator: Optional[object] = field(default=None, repr=False)
    #: The address servers route steering SYN-ACKs through (the single
    #: LB's own address, or the tier's shared steering address).
    steering_address: Optional[IPv6Address] = field(default=None, repr=False)
    #: The shared packet free list when ``config.packet_pooling`` is on
    #: (``None`` on the reference path).  Elastic additions draw from it
    #: too, so a grown fleet recycles like the initial one.
    packet_pool: Optional[PacketPool] = field(default=None, repr=False)
    #: Callbacks invoked when the arrival phase (plus settle margin) is
    #: over — how the autoscaler and other periodic control loops are
    #: stopped so the event heap can drain.  See :meth:`at_horizon`.
    _horizon_hooks: List[Callable[[], None]] = field(
        default_factory=list, repr=False
    )
    _next_server_index: int = field(default=0, repr=False)

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------
    def attach_load_sampler(self, interval: float = 0.5) -> ServerLoadSampler:
        """Start periodically sampling per-server busy-thread counts.

        Re-attaching replaces the previous sampler; its periodic task is
        stopped first, so it cannot keep rescheduling forever and hold
        the event heap open.
        """
        self.stop_load_sampler()
        sampler = ServerLoadSampler(interval=interval)

        def take_sample() -> None:
            sampler.sample(
                self.simulator.now,
                [server.busy_threads for server in self.servers],
            )

        task = PeriodicTask(
            simulator=self.simulator,
            interval=interval,
            callback=take_sample,
            label="load-sampler",
        )
        task.start(first_delay=0.0)
        self.load_sampler = sampler
        self._sampler_task = task
        return sampler

    def stop_load_sampler(self) -> None:
        """Stop the periodic load sampler (so the event heap can drain)."""
        if self._sampler_task is not None:
            self._sampler_task.stop()
            self._sampler_task = None

    def at_horizon(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` once the trace's arrival phase is over.

        :meth:`run_trace` invokes every registered hook right after the
        simulation reaches the arrival horizon, exactly where the load
        sampler is stopped.  The elastic control plane registers its
        autoscaler stop here, so the monitor loop cannot keep the event
        heap alive forever after the workload ends.
        """
        self._horizon_hooks.append(hook)

    # ------------------------------------------------------------------
    # elastic fleet hooks (used by repro.control)
    # ------------------------------------------------------------------
    def add_server(self, speed: float = 1.0) -> ServerNode:
        """Build, attach and register one additional application server.

        The new server is a full fleet member: fresh CPU (at ``speed``),
        fresh application instance, fresh acceptance-policy instance (the
        same recipe as the initial fleet), bound to the VIP, attached to
        the fabric, and added to every load balancer's backend pool — so
        the very next candidate selection can offer it connections.
        """
        if self.server_allocator is None or self.steering_address is None:
            raise WorkloadError(
                "this testbed was not built by build_testbed; it cannot "
                "add servers mid-run"
            )
        if self._sampler_task is not None:
            # The periodic load sampler requires a constant per-sample
            # row width; growing the fleet under it would make its next
            # tick raise mid-simulation.  Refuse up front instead.
            raise WorkloadError(
                "cannot add servers while a load sampler is attached; "
                "stop it first (the sampler needs a fixed fleet)"
            )
        index = self._next_server_index
        self._next_server_index += 1
        server = _build_server(
            simulator=self.simulator,
            fabric=self.fabric,
            config=self.config,
            policy_spec=self.policy_spec,
            catalog=self.catalog,
            index=index,
            address=self.server_allocator.allocate(),
            speed=speed,
            steering_address=self.steering_address,
            vip=self.vip,
            packet_pool=self.packet_pool,
        )
        self.servers.append(server)
        self._register_backend(server.primary_address)
        return server

    def retire_server(self, server: ServerNode) -> None:
        """Take a server out of every backend pool and start its drain.

        Existing flow-table entries keep steering to the server (that is
        what makes the drain graceful); new candidate lists stop naming
        it, and the Service Hunting layer refuses any in-flight optional
        offer.  The server stays attached to the fabric until its
        connections finish — detaching is the lifecycle's job, once the
        server is :attr:`~repro.server.virtual_router.ServerNode.quiescent`.

        Retiring a server that is already draining raises: the second
        call would try to remove an address the backend pools no longer
        hold, and a caller that double-drains (e.g. a detector firing on
        a server the lifecycle already took out) must find out loudly
        rather than corrupt the drain state.
        """
        if server.draining:
            raise WorkloadError(
                f"server {server.name!r} is already draining; it has been "
                "removed from the backend pools and cannot be retired twice"
            )
        self._retire_backend(server.primary_address)
        server.start_draining()

    def _register_backend(self, address: IPv6Address) -> None:
        if self.lb_tier is not None:
            self.lb_tier.add_backend(self.vip, address)
        else:
            self.load_balancer.add_backend(self.vip, address)

    def _retire_backend(self, address: IPv6Address) -> None:
        if self.lb_tier is not None:
            self.lb_tier.remove_backend(self.vip, address)
        else:
            self.load_balancer.remove_backend(self.vip, address)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_trace(self, trace: Trace, settle_margin: float = 5.0) -> float:
        """Replay ``trace`` to completion and return the final simulated time.

        All of the trace's requests are registered in the shared catalog,
        scheduled at their arrival times, and the simulation runs until
        every event has been processed.  When a load sampler is active it
        is stopped once the arrival phase (plus ``settle_margin`` seconds)
        is over, so the event heap can drain.

        Once the heap is empty the client sweeps every still-pending
        query into a failed outcome (``queries_swept``): a query whose
        SYN or final data packet was lost must not silently vanish from
        the completion-rate metrics.  On fault-free paths the sweep is a
        no-op (nothing is pending once the heap drains).
        """
        for request in trace:
            if request.request_id in self.catalog:
                # Re-running the same trace (or a pre-filled catalog) is
                # fine; a *different* request under a known id means two
                # traces with overlapping id spaces were replayed on one
                # testbed — the servers would silently look up the first
                # trace's CPU demands, so reject it loudly.  (Generated
                # traces number their requests 1..N, so ids are only
                # unique within a trace.)
                if self.catalog.get(request.request_id) != request:
                    raise WorkloadError(
                        f"request id {request.request_id} is already "
                        "registered with different contents; replay each "
                        "trace on its own testbed (or share one catalog "
                        "only across runs of the same trace)"
                    )
                continue
            self.catalog.add(request)
        self.client.schedule_trace(trace)
        if (
            self._sampler_task is not None
            or self._horizon_hooks
            or self.telemetry is not None
        ):
            horizon = self.simulator.now + trace.duration + settle_margin
            self.simulator.run(until=horizon)
            self.stop_load_sampler()
            if self.telemetry is not None:
                # Final sample + stop, so the sampling task cannot keep
                # the event heap alive past the horizon.
                self.telemetry.stop()
            hooks, self._horizon_hooks = self._horizon_hooks, []
            for hook in hooks:
                hook()
        duration = self.simulator.run()
        self.client.sweep_unfinished()
        if self.telemetry is not None:
            self.telemetry.publish()
        return duration

    # ------------------------------------------------------------------
    # convenience accessors used by experiments and tests
    # ------------------------------------------------------------------
    def server_busy_counts(self) -> List[int]:
        """Current busy-thread count of every server."""
        return [server.busy_threads for server in self.servers]

    def total_requests_served(self) -> int:
        """Requests served across the fleet."""
        return sum(server.app.stats.requests_served for server in self.servers)

    def total_resets(self) -> int:
        """Connections reset by backlog overflow across the fleet."""
        return sum(server.app.stats.connections_reset for server in self.servers)

    def acceptance_counts(self) -> Dict[str, int]:
        """Per-server accepted-connection counts (by server name)."""
        return {
            server.name: server.hunting.stats.accepted_total
            for server in self.servers
        }

    def load_balancers(self) -> List[LoadBalancerNode]:
        """Every load-balancer instance (one, or the whole tier)."""
        if self.lb_tier is not None:
            return list(self.lb_tier.instances)
        return [self.load_balancer]

    def total_steering_misses(self) -> int:
        """Steering misses across all load-balancer instances."""
        return sum(lb.stats.steering_misses for lb in self.load_balancers())


def build_testbed(
    config: TestbedConfig,
    policy_spec: PolicySpec,
    catalog: Optional[RequestCatalog] = None,
    collector: Optional[ResponseTimeCollector] = None,
    run_name: Optional[str] = None,
    client_factory: Optional[Callable[..., TrafficGeneratorNode]] = None,
) -> Testbed:
    """Build the full platform for one (testbed, policy) combination.

    Parameters
    ----------
    config:
        The static testbed description (server fleet, CPU model, ...).
    policy_spec:
        Which candidate-selection / acceptance-policy combination to run.
    catalog:
        Request catalog shared with the workload; created empty when not
        given (``run_trace`` fills it from the trace).
    collector:
        Response-time sink; created fresh when not given.
    run_name:
        Label attached to the collector, defaulting to the policy name.
    client_factory:
        Alternative traffic-generator class (or factory accepting the
        same keyword arguments as
        :class:`~repro.workload.client.TrafficGeneratorNode`).  The
        heavy-tail scenario passes
        :class:`~repro.workload.hostile.SessionAffinityClient` here to
        get per-user flow affinity.
    """
    simulator = Simulator(seed=config.seed)
    # Packet pooling swaps the fabric's delivery channel for one that
    # recycles delivered packets.  Every channel of the testbed must be
    # the *same* pooled instance: the ECMP edge's spread hop re-sends
    # the packets the fabric delivered to it, so a second, unpooled
    # channel would leak recycled packets past the in-flight marking.
    packet_pool: Optional[PacketPool] = None
    pooled_channel: Optional[PooledInProcessChannel] = None
    if config.packet_pooling:
        packet_pool = PacketPool()
        pooled_channel = PooledInProcessChannel(simulator, packet_pool)
    fabric = LANFabric(
        simulator, latency=config.fabric_latency, channel=pooled_channel
    )
    allocators = default_allocators()
    catalog = catalog if catalog is not None else RequestCatalog()
    collector = collector if collector is not None else ResponseTimeCollector(
        name=run_name or policy_spec.name
    )

    # Addresses: one LB (or the tier's shared steering address), one VIP,
    # one client, N servers.
    lb_address = allocators["lb"].allocate()
    vip = allocators["vip"].allocate()
    client_address = allocators["client"].allocate()
    server_addresses = list(allocators["server"].allocate_many(config.num_servers))

    # Candidate selection scheme (the RNG stream is owned by the simulator
    # so runs are reproducible given the testbed seed).  Tier deployments
    # build one selector per instance from the same recipe.
    def make_one_selector() -> CandidateSelector:
        if policy_spec.num_candidates == 1 and policy_spec.selector == "random":
            # Single random candidate: label it as the RR baseline.
            return make_selector(
                "single-random", rng=simulator.streams.stream("candidate-selection")
            )
        return make_selector(
            policy_spec.selector,
            rng=simulator.streams.stream("candidate-selection"),
            num_candidates=policy_spec.num_candidates,
        )

    lb_tier: Optional[LoadBalancerTier] = None
    if config.num_load_balancers > 1:
        instance_addresses = list(
            allocators["lb"].allocate_many(config.num_load_balancers)
        )
        lb_tier = LoadBalancerTier(
            simulator=simulator,
            steering_address=lb_address,
            instance_addresses=instance_addresses,
            selector_factory=make_one_selector,
            flow_idle_timeout=config.flow_idle_timeout,
            hash_scheme=config.ecmp_hash,
        )
        lb_tier.register_vip(vip, server_addresses)
        lb_tier.attach(fabric)
        if pooled_channel is not None:
            lb_tier.router.channel = pooled_channel
            for instance in lb_tier.instances:
                instance.packet_pool = packet_pool
        load_balancer: LoadBalancerNode = lb_tier.instances[0]
    else:
        load_balancer = LoadBalancerNode(
            simulator=simulator,
            name="lb",
            address=lb_address,
            selector=make_one_selector(),
            flow_idle_timeout=config.flow_idle_timeout,
        )
        load_balancer.register_vip(vip, server_addresses)
        load_balancer.attach(fabric)
        if packet_pool is not None:
            load_balancer.packet_pool = packet_pool

    servers: List[ServerNode] = [
        _build_server(
            simulator=simulator,
            fabric=fabric,
            config=config,
            policy_spec=policy_spec,
            catalog=catalog,
            index=index,
            address=address,
            speed=config.speed_of(index),
            steering_address=lb_address,
            vip=vip,
            packet_pool=packet_pool,
        )
        for index, address in enumerate(server_addresses)
    ]

    make_client = client_factory if client_factory is not None else TrafficGeneratorNode
    client = make_client(
        simulator=simulator,
        name="client",
        address=client_address,
        vip=vip,
        collector=collector,
        request_spread=config.request_spread,
        request_chunks=config.request_chunks,
        syn_retransmit_timeout=config.syn_retransmit_timeout,
        syn_retransmit_cap=config.syn_retransmit_cap,
        syn_retransmit_limit=config.syn_retransmit_limit,
        retry_timeout=config.retry_timeout,
        max_retries=config.max_retries,
    )
    client.attach(fabric)
    if packet_pool is not None:
        client.packet_pool = packet_pool

    testbed = Testbed(
        config=config,
        policy_spec=policy_spec,
        simulator=simulator,
        fabric=fabric,
        load_balancer=load_balancer,
        servers=servers,
        client=client,
        vip=vip,
        catalog=catalog,
        collector=collector,
        lb_tier=lb_tier,
        server_allocator=allocators["server"],
        steering_address=lb_address,
        packet_pool=packet_pool,
        _next_server_index=config.num_servers,
    )
    # Streaming telemetry is strictly opt-in: with the flag off, the
    # testbed is byte-for-byte what it was before the telemetry plane
    # existed.  With it on, the probe only *reads* simulation state and
    # draws no randomness, so run outcomes are still bit-identical (the
    # goldens are re-checked under REPRO_TELEMETRY=1 in CI).
    if telemetry_enabled():
        attach_telemetry(testbed)
    return testbed
