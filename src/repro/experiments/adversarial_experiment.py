"""Adversarial traffic and gray failure against the SRLB tier.

Every other family replays cooperative traffic.  This one replays the
same legitimate Poisson workload while something hostile happens in a
window mid-run, one attack mode per cell:

* ``baseline`` — the workload unmolested, for comparison;
* ``syn-flood`` — a spoofed-source SYN flood aimed at the VIP.  The
  fabric drops replies to the spoofed (unbound) sources silently, so
  every attack connection stays half-open: workers are pinned until the
  server's request timeout fires, backlogs fill, and the flow tables of
  the LB tier bloat with entries that only idle housekeeping reclaims;
* ``hash-collision`` — the same flood volume, but every 5-tuple comes
  from an offline search against the data plane's own ECMP selector
  (:func:`repro.net.ecmp.select_next_hop_name`) so ≥ 90 % of the attack
  flows land on *one* tier instance, skewing it while its peers idle;
* ``gray-failure`` — no attack traffic at all: one server's CPU is
  degraded (with square-wave jitter) instead of killed.  A
  :class:`~repro.control.gray_failure.GrayFailureWatchdog` compares
  busy-thread counts against the fleet median and quarantines the
  victim through the real server lifecycle (graceful drain plus a
  replacement provision) — the control plane's answer to non-crash
  degradation.

The scenario reports, per mode, what the *legitimate* flows experienced
(completion rate, p99) next to the attack-side counters (SYNs sent,
bucket concentration, flow-table growth, timeouts, quarantine delay).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.control.gray_failure import GrayFailureInjector, GrayFailureWatchdog
from repro.control.lifecycle import ServerLifecycle
from repro.errors import ExperimentError
from repro.experiments import registry
from repro.experiments.calibration import analytic_saturation_rate
from repro.experiments.config import AdversarialConfig, TestbedConfig
from repro.experiments.platform import Testbed, build_testbed
from repro.experiments.scenario import (
    ScenarioCell,
    ScenarioSpec,
    TraceProvider,
    run_scenario,
)
from repro.metrics.collector import CollectorPayload, ResponseTimeCollector
from repro.metrics.reporting import format_table
from repro.metrics.stats import SummaryStatistics
from repro.net.addressing import CLIENT_PREFIX
from repro.workload.hostile import (
    SynFloodAttacker,
    find_colliding_flow_keys,
    spoofed_source_flows,
)
from repro.workload.poisson import PoissonWorkload
from repro.workload.requests import RequestCatalog
from repro.workload.service_models import ExponentialServiceTime
from repro.workload.trace import Trace

#: Attacker node address and the base offset of the spoofed source pool,
#: far above anything the client allocator hands out.
_ATTACKER_OFFSET = 9_999
_SPOOFED_BASE_OFFSET = 10_000


def adversarial_rate(config: AdversarialConfig) -> float:
    """Legitimate arrival rate (queries/second) of the workload."""
    saturation = analytic_saturation_rate(config.testbed, config.service_mean)
    return config.load_factor * saturation


def make_adversarial_trace(config: AdversarialConfig) -> Trace:
    """The legitimate Poisson trace shared by every attack mode."""
    saturation = analytic_saturation_rate(config.testbed, config.service_mean)
    workload = PoissonWorkload.from_load_factor(
        rho=config.load_factor,
        saturation_rate=saturation,
        num_queries=config.num_queries,
        service_model=ExponentialServiceTime(config.service_mean),
    )
    rng = np.random.default_rng([config.workload_seed, config.num_queries])
    return workload.generate(rng)


@dataclass
class AdversarialRunResult:
    """Outcome of one (attack mode, legitimate trace) run."""

    mode: str
    config: AdversarialConfig
    collector: ResponseTimeCollector
    requests_served: int
    connections_reset: int
    connections_timed_out: int
    queries_hung: int
    steering_misses: int
    recovery_hunts: int
    peak_concurrent_connections: int
    attack_syns_sent: int
    #: Fraction of attack flows the live edge router maps onto the
    #: targeted instance (``None`` outside ``hash-collision`` mode).
    attack_bucket_share: Optional[float]
    flow_entries_created: int
    flow_entries_expired: int
    flow_entries_live: int
    #: Seconds from degradation start to the watchdog's quarantine
    #: decision (``None`` when nothing was quarantined).
    quarantine_delay: Optional[float]
    quarantined: Tuple[str, ...]
    simulated_duration: float

    @property
    def completion_rate(self) -> float:
        """Fraction of legitimate queries that completed."""
        return self.collector.totals.completed / self.config.num_queries

    @property
    def summary(self) -> SummaryStatistics:
        """Response-time summary of the legitimate queries that completed."""
        return self.collector.summary()

    def export_payload(self) -> "AdversarialRunPayload":
        """Compact, picklable export of this run (for the scenario runner)."""
        return AdversarialRunPayload(
            mode=self.mode,
            config=self.config,
            collector=self.collector.export_payload(),
            requests_served=self.requests_served,
            connections_reset=self.connections_reset,
            connections_timed_out=self.connections_timed_out,
            queries_hung=self.queries_hung,
            steering_misses=self.steering_misses,
            recovery_hunts=self.recovery_hunts,
            peak_concurrent_connections=self.peak_concurrent_connections,
            attack_syns_sent=self.attack_syns_sent,
            attack_bucket_share=self.attack_bucket_share,
            flow_entries_created=self.flow_entries_created,
            flow_entries_expired=self.flow_entries_expired,
            flow_entries_live=self.flow_entries_live,
            quarantine_delay=self.quarantine_delay,
            quarantined=self.quarantined,
            simulated_duration=self.simulated_duration,
        )


@dataclass
class AdversarialRunPayload:
    """Picklable compact form of an :class:`AdversarialRunResult`."""

    mode: str
    config: AdversarialConfig
    collector: CollectorPayload
    requests_served: int
    connections_reset: int
    connections_timed_out: int
    queries_hung: int
    steering_misses: int
    recovery_hunts: int
    peak_concurrent_connections: int
    attack_syns_sent: int
    attack_bucket_share: Optional[float]
    flow_entries_created: int
    flow_entries_expired: int
    flow_entries_live: int
    quarantine_delay: Optional[float]
    quarantined: Tuple[str, ...]
    simulated_duration: float

    def to_result(self) -> AdversarialRunResult:
        """Rebuild the full result object in the parent process."""
        return AdversarialRunResult(
            mode=self.mode,
            config=self.config,
            collector=ResponseTimeCollector.from_payload(self.collector),
            requests_served=self.requests_served,
            connections_reset=self.connections_reset,
            connections_timed_out=self.connections_timed_out,
            queries_hung=self.queries_hung,
            steering_misses=self.steering_misses,
            recovery_hunts=self.recovery_hunts,
            peak_concurrent_connections=self.peak_concurrent_connections,
            attack_syns_sent=self.attack_syns_sent,
            attack_bucket_share=self.attack_bucket_share,
            flow_entries_created=self.flow_entries_created,
            flow_entries_expired=self.flow_entries_expired,
            flow_entries_live=self.flow_entries_live,
            quarantine_delay=self.quarantine_delay,
            quarantined=self.quarantined,
            simulated_duration=self.simulated_duration,
        )


def _build_adversarial_platform(config: AdversarialConfig, mode: str) -> Testbed:
    """A fresh tier-fronted testbed for one attack mode's run."""
    return build_testbed(
        config.testbed,
        config.policy,
        catalog=RequestCatalog(),
        run_name=f"adversarial-{mode}",
    )


def spoofed_sources(config: AdversarialConfig):
    """The deterministic spoofed source pool (unbound client addresses)."""
    return tuple(
        CLIENT_PREFIX.address_at(_SPOOFED_BASE_OFFSET + index)
        for index in range(config.flood_sources)
    )


def _attach_flood(
    testbed: Testbed,
    config: AdversarialConfig,
    mode: str,
    trace: Trace,
) -> SynFloodAttacker:
    """Build, attach and schedule the flood for ``syn-flood``/``hash-collision``."""
    tier = testbed.lb_tier
    assert tier is not None
    start = trace.duration * config.attack_start_fraction
    window = trace.duration * (
        config.attack_end_fraction - config.attack_start_fraction
    )
    rate = config.flood_rate_factor * adversarial_rate(config)
    num_syns = max(1, int(round(rate * window)))
    sources = spoofed_sources(config)
    if mode == "hash-collision":
        hop_names = [instance.name for instance in tier.instances]
        flows = find_colliding_flow_keys(
            hop_names,
            hop_names[config.collision_target],
            testbed.vip,
            sources,
            count=config.collision_flows,
            hash_scheme=config.testbed.ecmp_hash,
        )
        seed_salt = 202
    else:
        # Maximal spoofed-source churn: every SYN gets a fresh 5-tuple.
        flows = spoofed_source_flows(testbed.vip, sources, num_flows=num_syns)
        seed_salt = 101
    attacker = SynFloodAttacker(
        testbed.simulator,
        name="attacker",
        address=CLIENT_PREFIX.address_at(_ATTACKER_OFFSET),
        flows=flows,
    )
    attacker.attach(testbed.fabric)
    rng = np.random.default_rng([config.workload_seed, seed_salt])
    attacker.schedule_flood(rng, start_at=start, rate=rate, num_syns=num_syns)
    return attacker


def _attach_gray_failure(
    testbed: Testbed, config: AdversarialConfig, trace: Trace
) -> GrayFailureWatchdog:
    """Degrade the first server mid-run and arm the quarantine watchdog."""
    victim = testbed.servers[0]
    start = trace.duration * config.attack_start_fraction
    window = trace.duration * (
        config.attack_end_fraction - config.attack_start_fraction
    )
    injector = GrayFailureInjector(
        testbed.simulator,
        victim,
        degraded_factor=config.degraded_speed,
        start_at=start,
        duration=window,
        jitter_amplitude=config.jitter_amplitude,
        jitter_interval=config.jitter_interval,
    )
    injector.start()

    on_quarantine = None
    if config.quarantine:
        lifecycle = ServerLifecycle(testbed)

        def drain_and_replace(server) -> None:
            lifecycle.drain(lifecycle.record_for(server.name))
            lifecycle.provision(speed=1.0)

        on_quarantine = drain_and_replace

    # Under telemetry, the watchdog samples busy counts through the bus
    # (the same integers at the same tick instant — decisions stay
    # bit-identical to the direct scoreboard reads, pinned by goldens),
    # and every quarantine freezes the flight recorder's recent window.
    sample_busy = None
    if testbed.telemetry is not None:
        probe = testbed.telemetry
        sample_busy = probe.watchdog_feed()
        inner_quarantine = on_quarantine

        def quarantine_and_dump(server) -> None:
            probe.recorder.trip(
                f"quarantine:{server.name}", testbed.simulator.now
            )
            if inner_quarantine is not None:
                inner_quarantine(server)

        on_quarantine = quarantine_and_dump

    watchdog = GrayFailureWatchdog(
        testbed.simulator,
        servers=lambda: testbed.servers,
        on_quarantine=on_quarantine,
        interval=config.watchdog_interval,
        slow_factor=config.watchdog_slow_factor,
        min_busy=config.watchdog_min_busy,
        consecutive=config.watchdog_consecutive,
        sample_busy=sample_busy,
    )
    watchdog.start()
    testbed.at_horizon(watchdog.stop)
    return watchdog


def run_adversarial_once(
    config: AdversarialConfig,
    mode: str,
    trace: Optional[Trace] = None,
) -> AdversarialRunResult:
    """Replay the legitimate workload under one attack mode."""
    if mode not in config.modes:
        raise ExperimentError(
            f"mode {mode!r} is not in the configuration's modes {config.modes!r}"
        )
    if trace is None:
        trace = make_adversarial_trace(config)
    testbed = _build_adversarial_platform(config, mode)
    tier = testbed.lb_tier
    if tier is None:
        raise ExperimentError(
            "adversarial experiments require num_load_balancers >= 2"
        )

    # Idle-flow housekeeping on every instance, so the flood's flow-table
    # entries are reclaimed in-run instead of accumulating to the end.
    for instance in tier.instances:
        instance.start_housekeeping(config.housekeeping_interval)

    def stop_housekeeping() -> None:
        for instance in tier.instances:
            instance.stop_housekeeping()

    testbed.at_horizon(stop_housekeeping)

    attacker: Optional[SynFloodAttacker] = None
    watchdog: Optional[GrayFailureWatchdog] = None
    if mode in ("syn-flood", "hash-collision"):
        attacker = _attach_flood(testbed, config, mode, trace)
    elif mode == "gray-failure":
        watchdog = _attach_gray_failure(testbed, config, trace)

    duration = testbed.run_trace(trace)

    attack_bucket_share: Optional[float] = None
    if mode == "hash-collision" and attacker is not None:
        # Measured against the *live* edge router, not the offline
        # search: the selector the packets actually traversed.
        target = tier.instances[config.collision_target].name
        hits = sum(
            1
            for flow in attacker.flows
            if tier.router.next_hop_for(flow).name == target
        )
        attack_bucket_share = hits / len(attacker.flows)

    quarantine_delay: Optional[float] = None
    quarantined: Tuple[str, ...] = ()
    if watchdog is not None and watchdog.events:
        start = trace.duration * config.attack_start_fraction
        quarantine_delay = watchdog.events[0].time - start
        quarantined = watchdog.quarantined

    instances = tier.instances
    return AdversarialRunResult(
        mode=mode,
        config=config,
        collector=testbed.collector,
        requests_served=testbed.total_requests_served(),
        connections_reset=testbed.total_resets(),
        connections_timed_out=sum(
            server.app.stats.connections_timed_out for server in testbed.servers
        ),
        queries_hung=testbed.client.queries_swept,
        steering_misses=testbed.total_steering_misses(),
        recovery_hunts=tier.recovery_hunts(),
        peak_concurrent_connections=max(
            server.app.stats.peak_concurrent_connections
            for server in testbed.servers
        ),
        attack_syns_sent=attacker.syns_sent if attacker is not None else 0,
        attack_bucket_share=attack_bucket_share,
        flow_entries_created=sum(
            instance.flow_table.stats.entries_created for instance in instances
        ),
        flow_entries_expired=sum(
            instance.flow_table.stats.entries_expired for instance in instances
        ),
        flow_entries_live=sum(
            len(instance.flow_table) for instance in instances
        ),
        quarantine_delay=quarantine_delay,
        quarantined=quarantined,
        simulated_duration=duration,
    )


@dataclass
class AdversarialComparison:
    """All attack modes of one comparison, over the same legit workload."""

    config: AdversarialConfig
    runs: Dict[str, AdversarialRunResult] = field(default_factory=dict)

    def modes(self) -> List[str]:
        """Mode names, in configuration order."""
        return list(self.config.modes)

    def run(self, mode: str) -> AdversarialRunResult:
        """The run for one attack mode."""
        try:
            return self.runs[mode]
        except KeyError as exc:
            raise ExperimentError(f"no run for mode {mode!r}") from exc


class AdversarialScenario(ScenarioSpec):
    """The adversarial-traffic comparison as a declarative scenario."""

    name = "adversarial"
    title = "Legitimate-flow service under SYN flood, hash skew and gray failure"

    def default_config(self) -> AdversarialConfig:
        return AdversarialConfig()

    def smoke_config(self) -> AdversarialConfig:
        return AdversarialConfig(
            testbed=TestbedConfig(
                num_servers=6,
                workers_per_server=8,
                cores_per_server=2,
                backlog_capacity=16,
                num_load_balancers=3,
                flow_idle_timeout=5.0,
                request_timeout=2.0,
            ),
            num_queries=500,
            flood_sources=8,
            collision_flows=96,
            # The smoke trace lasts only a few seconds, so detection must
            # fit inside a ~1.5 s attack window.
            watchdog_interval=0.2,
            watchdog_consecutive=2,
        )

    def cells(self, config: AdversarialConfig) -> List[ScenarioCell]:
        return [
            ScenarioCell(key=mode, params={"mode": mode})
            for mode in config.modes
        ]

    # trace_key: the default (one shared trace for every mode).

    def make_trace(self, config: AdversarialConfig, cell: ScenarioCell) -> Trace:
        return make_adversarial_trace(config)

    def build_platform(
        self, config: AdversarialConfig, cell: ScenarioCell
    ) -> Testbed:
        return _build_adversarial_platform(config, cell.param("mode"))

    def run_once(
        self, config: AdversarialConfig, cell: ScenarioCell, trace: Trace
    ) -> AdversarialRunPayload:
        return run_adversarial_once(
            config, cell.param("mode"), trace=trace
        ).export_payload()

    def aggregate(
        self,
        config: AdversarialConfig,
        cells: Sequence[ScenarioCell],
        payloads: Sequence[AdversarialRunPayload],
        trace_for: TraceProvider,
    ) -> AdversarialComparison:
        comparison = AdversarialComparison(config=config)
        for payload in payloads:
            comparison.runs[payload.mode] = payload.to_result()
        return comparison

    def render(self, result: AdversarialComparison) -> str:
        return render_adversarial_table(result)


#: The registered spec instance (also reachable via ``registry.get``).
ADVERSARIAL_SCENARIO = registry.register(AdversarialScenario())


def run_adversarial(
    config: AdversarialConfig, jobs: Optional[int] = 1
) -> AdversarialComparison:
    """Replay the workload under every configured attack mode.

    ``jobs`` fans the per-mode runs out over a process pool
    (``None``/``0`` = all cores); results are identical for any value —
    see :mod:`repro.experiments.runner` for the determinism contract.
    """
    return run_scenario(ADVERSARIAL_SCENARIO, config, jobs=jobs)


def render_adversarial_table(comparison: AdversarialComparison) -> str:
    """Text table of the per-mode adversarial comparison."""
    config = comparison.config
    rows: List[List[object]] = []
    for mode in comparison.modes():
        run = comparison.run(mode)
        bucket = (
            f"{100 * run.attack_bucket_share:.1f}%"
            if run.attack_bucket_share is not None
            else "-"
        )
        quarantine = (
            f"{run.quarantine_delay:.2f}s"
            if run.quarantine_delay is not None
            else "-"
        )
        rows.append(
            [
                mode,
                f"{100 * run.completion_rate:.1f}%",
                # Swept (hung) queries are recorded as failed outcomes by
                # the end-of-run sweep, so the total already covers them.
                run.collector.totals.failed,
                run.summary.mean,
                run.summary.p99,
                run.attack_syns_sent,
                bucket,
                run.connections_timed_out,
                run.flow_entries_created,
                quarantine,
            ]
        )
    return format_table(
        [
            "mode",
            "legit done",
            "failed",
            "mean (s)",
            "p99 (s)",
            "atk SYNs",
            "bucket",
            "timeouts",
            "flows seen",
            "quarantine",
        ],
        rows,
        title=(
            f"Adversarial traffic: {config.testbed.num_load_balancers} LBs, "
            f"{config.testbed.num_servers} servers, rho={config.load_factor:g}, "
            f"attack window "
            f"[{config.attack_start_fraction:g}, {config.attack_end_fraction:g}] "
            f"of the trace"
        ),
    )
