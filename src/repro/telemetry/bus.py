"""The telemetry bus: named streaming series sampled *during* a run.

Every other metric in the reproduction is scraped after the fact — the
collector, the load sampler and the per-node stats records are all read
once the event heap has drained.  The bus is the in-sim counterpart: a
registry of named per-tier series (counters and gauges) that a periodic
sampling task appends to while the simulation runs, each backed by a
fixed-size numeric ring buffer so a million-event run costs the same
memory as a smoke test.

Determinism contract
--------------------
The bus is passive storage: recording a sample draws no randomness and
touches no simulation state, so runs with telemetry attached stay
bit-identical to runs without it (the goldens are re-checked with
telemetry enabled in CI).  The picklable :class:`TelemetryPayload`
export crosses process boundaries verbatim, and
:meth:`TelemetryPayload.merge` folds the payloads of partitioned or
swept runs with a deterministic (time, payload order) rule.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import TelemetryError
from repro.telemetry.anomaly import AnomalyEvent

#: Series kinds the bus distinguishes.  A *counter* carries cumulative
#: monotone totals (the sampler records the running value each tick); a
#: *gauge* carries instantaneous levels.
SERIES_KINDS = ("counter", "gauge")

#: Default ring capacity: enough for a 500-simulated-second run at the
#: default 0.25 s sampling interval, at 16 bytes per slot.
DEFAULT_CAPACITY = 2048


class RingBuffer:
    """Fixed-size (time, value) ring — the storage behind one series.

    Backed by two preallocated ``array('d')`` blocks; appending is two
    slot writes and an index bump, so the sampling task stays cheap even
    at small intervals.  Once full, the oldest sample is overwritten.
    """

    __slots__ = ("capacity", "_times", "_values", "_head", "_count")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise TelemetryError(
                f"ring capacity must be positive, got {capacity!r}"
            )
        self.capacity = capacity
        self._times = array("d", bytes(8 * capacity))
        self._values = array("d", bytes(8 * capacity))
        self._head = 0
        self._count = 0

    def append(self, time: float, value: float) -> None:
        """Record one sample (overwrites the oldest once full)."""
        head = self._head
        self._times[head] = time
        self._values[head] = value
        self._head = (head + 1) % self.capacity
        if self._count < self.capacity:
            self._count += 1

    def __len__(self) -> int:
        return self._count

    @property
    def latest(self) -> float:
        """The most recently appended value (loud when empty)."""
        if self._count == 0:
            raise TelemetryError("ring buffer is empty")
        return self._values[self._head - 1]

    def export(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` in chronological order, as float64 arrays."""
        times = np.frombuffer(self._times, dtype=np.float64).copy()
        values = np.frombuffer(self._values, dtype=np.float64).copy()
        if self._count < self.capacity:
            return times[: self._count], values[: self._count]
        order = np.concatenate(
            [np.arange(self._head, self.capacity), np.arange(self._head)]
        )
        return times[order], values[order]


class TelemetrySeries:
    """One named stream on the bus: a kind, a tier label, and a ring."""

    __slots__ = ("name", "kind", "tier", "ring")

    def __init__(self, name: str, kind: str, tier: str, capacity: int) -> None:
        if kind not in SERIES_KINDS:
            raise TelemetryError(
                f"series kind must be one of {SERIES_KINDS}, got {kind!r}"
            )
        self.name = name
        self.kind = kind
        self.tier = tier
        self.ring = RingBuffer(capacity)

    def record(self, time: float, value: float) -> None:
        """Append one sample."""
        self.ring.append(time, value)

    @property
    def latest(self) -> float:
        """The most recent sample value (loud when empty)."""
        return self.ring.latest

    def __len__(self) -> int:
        return len(self.ring)

    def __repr__(self) -> str:
        return (
            f"TelemetrySeries(name={self.name!r}, kind={self.kind!r}, "
            f"tier={self.tier!r}, samples={len(self.ring)})"
        )


class TelemetryBus:
    """Registry of named streaming series, one ring buffer each.

    Series are created lazily on first :meth:`record` (or explicitly via
    :meth:`counter`/:meth:`gauge`), in a stable insertion order that the
    payload export preserves.  Recording is read-only with respect to
    the simulation: no RNG, no scheduled events, no node state.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise TelemetryError(
                f"bus capacity must be positive, got {capacity!r}"
            )
        self.capacity = capacity
        self._series: Dict[str, TelemetrySeries] = {}

    def _declare(self, name: str, kind: str, tier: str) -> TelemetrySeries:
        series = self._series.get(name)
        if series is None:
            series = TelemetrySeries(name, kind, tier, self.capacity)
            self._series[name] = series
        elif series.kind != kind:
            raise TelemetryError(
                f"series {name!r} is a {series.kind}, not a {kind}"
            )
        return series

    def counter(self, name: str, tier: str = "") -> TelemetrySeries:
        """Get or create a cumulative counter series."""
        return self._declare(name, "counter", tier)

    def gauge(self, name: str, tier: str = "") -> TelemetrySeries:
        """Get or create an instantaneous gauge series."""
        return self._declare(name, "gauge", tier)

    def record(
        self, name: str, time: float, value: float, kind: str = "gauge",
        tier: str = "",
    ) -> None:
        """Append one sample, creating the series on first use."""
        self._declare(name, kind, tier).record(time, value)

    def series(self, name: str) -> TelemetrySeries:
        """The series registered under ``name`` (loud when missing)."""
        try:
            return self._series[name]
        except KeyError as exc:
            raise TelemetryError(
                f"no telemetry series named {name!r} (have "
                f"{sorted(self._series)})"
            ) from exc

    def names(self) -> List[str]:
        """Registered series names, in insertion order."""
        return list(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __len__(self) -> int:
        return len(self._series)

    def export_payload(
        self,
        anomalies: Sequence[AnomalyEvent] = (),
        meta: Mapping[str, Any] | None = None,
    ) -> "TelemetryPayload":
        """Snapshot every series into a picklable payload."""
        names: List[str] = []
        kinds: List[str] = []
        tiers: List[str] = []
        times: List[np.ndarray] = []
        values: List[np.ndarray] = []
        for series in self._series.values():
            series_times, series_values = series.ring.export()
            names.append(series.name)
            kinds.append(series.kind)
            tiers.append(series.tier)
            times.append(series_times)
            values.append(series_values)
        return TelemetryPayload(
            capacity=self.capacity,
            names=tuple(names),
            kinds=tuple(kinds),
            tiers=tuple(tiers),
            times=tuple(times),
            values=tuple(values),
            anomalies=tuple(anomalies),
            meta=dict(meta or {}),
        )

    def __repr__(self) -> str:
        return f"TelemetryBus(series={len(self._series)}, capacity={self.capacity})"


@dataclass
class TelemetryPayload:
    """Picklable export of a bus: parallel tuples of series arrays.

    The same compact-arrays idiom as
    :class:`~repro.metrics.collector.CollectorPayload`: string tables
    plus float64 arrays, so the payload crosses the ``jobs``/partition
    process boundary verbatim and every derived figure is bit-identical
    to the in-process path.
    """

    capacity: int
    names: Tuple[str, ...]
    kinds: Tuple[str, ...]
    tiers: Tuple[str, ...]
    times: Tuple[np.ndarray, ...]
    values: Tuple[np.ndarray, ...]
    anomalies: Tuple[AnomalyEvent, ...] = ()
    meta: Dict[str, Any] = field(default_factory=dict)

    def series(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` of one series (loud when missing)."""
        try:
            index = self.names.index(name)
        except ValueError as exc:
            raise TelemetryError(
                f"payload has no series named {name!r} (have "
                f"{sorted(self.names)})"
            ) from exc
        return self.times[index], self.values[index]

    def kind_of(self, name: str) -> str:
        """The kind (``counter``/``gauge``) of one series."""
        self.series(name)
        return self.kinds[self.names.index(name)]

    @classmethod
    def merge(cls, payloads: Sequence["TelemetryPayload"]) -> "TelemetryPayload":
        """Fold several payloads into one, deterministically.

        Series are united in first-seen order across the payload
        sequence; per series, samples are concatenated in payload order
        and stable-sorted by time (ties keep payload order), then
        truncated to the newest ``capacity`` samples — the same window
        rule a single ring would have applied.  Anomalies merge under
        the identical rule.  The payload *sequence* order is the
        caller's determinism obligation (cell order, pod index order).
        """
        payloads = list(payloads)
        if not payloads:
            raise TelemetryError("cannot merge zero telemetry payloads")
        if len(payloads) == 1:
            return payloads[0]
        capacity = max(payload.capacity for payload in payloads)
        names: List[str] = []
        kinds: Dict[str, str] = {}
        tiers: Dict[str, str] = {}
        chunks: Dict[str, List[Tuple[np.ndarray, np.ndarray]]] = {}
        for payload in payloads:
            for index, name in enumerate(payload.names):
                kind = payload.kinds[index]
                if name not in chunks:
                    names.append(name)
                    kinds[name] = kind
                    tiers[name] = payload.tiers[index]
                    chunks[name] = []
                elif kinds[name] != kind:
                    raise TelemetryError(
                        f"cannot merge series {name!r}: kind {kinds[name]!r} "
                        f"vs {kind!r}"
                    )
                chunks[name].append((payload.times[index], payload.values[index]))
        merged_times: List[np.ndarray] = []
        merged_values: List[np.ndarray] = []
        for name in names:
            times = np.concatenate([chunk[0] for chunk in chunks[name]])
            values = np.concatenate([chunk[1] for chunk in chunks[name]])
            order = np.argsort(times, kind="stable")
            times, values = times[order], values[order]
            if times.size > capacity:
                times, values = times[-capacity:], values[-capacity:]
            merged_times.append(times)
            merged_values.append(values)
        anomalies = tuple(
            sorted(
                (event for payload in payloads for event in payload.anomalies),
                key=lambda event: event.time,
            )
        )
        return cls(
            capacity=capacity,
            names=tuple(names),
            kinds=tuple(kinds[name] for name in names),
            tiers=tuple(tiers[name] for name in names),
            times=tuple(merged_times),
            values=tuple(merged_values),
            anomalies=anomalies,
            meta={"merged_from": len(payloads), **payloads[0].meta},
        )

    # ------------------------------------------------------------------
    # JSON round-trip (the dashboard's on-disk format)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable form (float lists instead of arrays)."""
        return {
            "capacity": self.capacity,
            "series": [
                {
                    "name": self.names[index],
                    "kind": self.kinds[index],
                    "tier": self.tiers[index],
                    "times": [float(t) for t in self.times[index]],
                    "values": [float(v) for v in self.values[index]],
                }
                for index in range(len(self.names))
            ],
            "anomalies": [
                {
                    "time": event.time,
                    "series": event.series,
                    "kind": event.kind,
                    "value": event.value,
                    "expected": event.expected,
                    "residual": event.residual,
                    "threshold": event.threshold,
                }
                for event in self.anomalies
            ],
            "meta": dict(self.meta),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "TelemetryPayload":
        """Rebuild a payload from :meth:`to_json_dict` output."""
        try:
            series = data["series"]
            capacity = int(data["capacity"])
        except (KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(
                f"malformed telemetry payload JSON: {exc}"
            ) from exc
        return cls(
            capacity=capacity,
            names=tuple(entry["name"] for entry in series),
            kinds=tuple(entry["kind"] for entry in series),
            tiers=tuple(entry.get("tier", "") for entry in series),
            times=tuple(
                np.asarray(entry["times"], dtype=np.float64) for entry in series
            ),
            values=tuple(
                np.asarray(entry["values"], dtype=np.float64) for entry in series
            ),
            anomalies=tuple(
                AnomalyEvent(
                    time=float(entry["time"]),
                    series=entry["series"],
                    kind=entry["kind"],
                    value=float(entry["value"]),
                    expected=float(entry["expected"]),
                    residual=float(entry["residual"]),
                    threshold=float(entry["threshold"]),
                )
                for entry in data.get("anomalies", ())
            ),
            meta=dict(data.get("meta", {})),
        )
