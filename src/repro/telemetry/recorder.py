"""Flight recorder: a bounded ring of recent in-sim events.

Components feed the recorder from cold paths (client retransmissions,
watchdog strikes, fault-plane drops, control-plane actions) and pay two
array writes per event: labels are interned to small integer codes and
events live in preallocated array-backed slots, so a recorder attached
to a hot run costs no per-event allocation.  When something *trips* —
an SLO breach detected by the telemetry probe, or a watchdog quarantine
— the recorder freezes the last N simulated seconds into a
JSON-serialisable :class:`FlightDump` (the black-box readout of what
the data plane was doing just before the incident).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from repro.errors import TelemetryError

#: Default ring size: enough for the densest smoke runs' full history.
DEFAULT_SLOTS = 4096

#: Default dump window, in simulated seconds before the trip.
DEFAULT_WINDOW = 5.0


@dataclass(frozen=True)
class FlightEvent:
    """One decoded recorder entry."""

    time: float
    kind: str
    label: str
    value: float


@dataclass(frozen=True)
class FlightDump:
    """The frozen readout taken when a trip fires."""

    reason: str
    tripped_at: float
    window: float
    events: Tuple[FlightEvent, ...]

    def to_json_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable form of the dump."""
        return {
            "reason": self.reason,
            "tripped_at": self.tripped_at,
            "window": self.window,
            "events": [
                {
                    "time": event.time,
                    "kind": event.kind,
                    "label": event.label,
                    "value": event.value,
                }
                for event in self.events
            ],
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "FlightDump":
        """Rebuild a dump from :meth:`to_json_dict` output."""
        try:
            events = tuple(
                FlightEvent(
                    time=float(entry["time"]),
                    kind=entry["kind"],
                    label=entry["label"],
                    value=float(entry["value"]),
                )
                for entry in data["events"]
            )
            return cls(
                reason=data["reason"],
                tripped_at=float(data["tripped_at"]),
                window=float(data["window"]),
                events=events,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(f"malformed flight dump JSON: {exc}") from exc


class FlightRecorder:
    """Bounded event ring with interned labels and array-backed slots.

    ``record`` is the only call on the fast path and performs no
    allocation once a ``(kind, label)`` pair has been seen: the pair is
    interned to an integer code and each event occupies one slot of two
    preallocated arrays.
    """

    def __init__(self, slots: int = DEFAULT_SLOTS) -> None:
        if slots < 1:
            raise TelemetryError(
                f"recorder slots must be positive, got {slots!r}"
            )
        self.slots = slots
        self._times = array("d", bytes(8 * slots))
        self._values = array("d", bytes(8 * slots))
        self._codes = array("i", bytes(4 * slots))
        self._head = 0
        self._count = 0
        #: ``(kind, label) -> code`` intern table, and its inverse.
        self._intern: Dict[Tuple[str, str], int] = {}
        self._labels: List[Tuple[str, str]] = []
        self.dumps: List[FlightDump] = []
        self.events_recorded = 0

    def code_of(self, kind: str, label: str) -> int:
        """Intern a ``(kind, label)`` pair; components may cache this."""
        key = (kind, label)
        code = self._intern.get(key)
        if code is None:
            code = len(self._labels)
            self._intern[key] = code
            self._labels.append(key)
        return code

    def record(self, time: float, kind: str, label: str, value: float = 0.0) -> None:
        """Append one event (overwrites the oldest once full)."""
        self.record_coded(time, self.code_of(kind, label), value)

    def record_coded(self, time: float, code: int, value: float = 0.0) -> None:
        """Append one event by pre-interned code (the cheapest feed)."""
        head = self._head
        self._times[head] = time
        self._codes[head] = code
        self._values[head] = value
        self._head = (head + 1) % self.slots
        if self._count < self.slots:
            self._count += 1
        self.events_recorded += 1

    def __len__(self) -> int:
        return self._count

    def events(self) -> List[FlightEvent]:
        """Every retained event, oldest first (decoded)."""
        if self._count < self.slots:
            order = range(self._count)
        else:
            order = [
                (self._head + offset) % self.slots for offset in range(self.slots)
            ]
        return [
            FlightEvent(
                time=self._times[index],
                kind=self._labels[self._codes[index]][0],
                label=self._labels[self._codes[index]][1],
                value=self._values[index],
            )
            for index in order
        ]

    def trip(
        self, reason: str, now: float, window: float = DEFAULT_WINDOW
    ) -> FlightDump:
        """Freeze the last ``window`` simulated seconds into a dump."""
        if window <= 0:
            raise TelemetryError(
                f"dump window must be positive, got {window!r}"
            )
        cutoff = now - window
        dump = FlightDump(
            reason=reason,
            tripped_at=now,
            window=window,
            events=tuple(
                event for event in self.events() if event.time >= cutoff
            ),
        )
        self.dumps.append(dump)
        return dump

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(slots={self.slots}, retained={self._count}, "
            f"recorded={self.events_recorded}, dumps={len(self.dumps)})"
        )
