"""Telemetry enablement and the per-process publish buffer.

Telemetry is strictly opt-in: the probe only attaches to testbeds while
:func:`telemetry_enabled` is true.  Enablement rides in an environment
variable (``REPRO_TELEMETRY``) rather than module state so it survives
every process boundary the experiment harness crosses — ``jobs`` pool
workers and partition workers inherit the parent's environment under
both fork and spawn start methods.

Published payloads accumulate in a per-process buffer: a worker's
:func:`repro.experiments.scenario._run_scenario_cell` drains its own
buffer and ships the payloads home inside the cell result; the parent's
:func:`~repro.experiments.scenario.run_scenario` folds them into a
:class:`TelemetryReport` that the CLI reads back via
:func:`last_report`.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.bus import TelemetryPayload

#: Enablement flag; any non-empty value other than ``0`` enables.
ENV_FLAG = "REPRO_TELEMETRY"
#: Sampling interval override, simulated seconds (default 0.25).
ENV_INTERVAL = "REPRO_TELEMETRY_INTERVAL"
#: Ring-capacity override (default repro.telemetry.bus.DEFAULT_CAPACITY).
ENV_CAPACITY = "REPRO_TELEMETRY_CAPACITY"

DEFAULT_INTERVAL = 0.25

_published: List[Tuple[str, TelemetryPayload]] = []
_last_report: Optional["TelemetryReport"] = None


def enable() -> None:
    """Turn telemetry on for this process and its future children."""
    os.environ[ENV_FLAG] = "1"


def disable() -> None:
    """Turn telemetry off (and clear any buffered payloads)."""
    os.environ.pop(ENV_FLAG, None)
    _published.clear()


def telemetry_enabled() -> bool:
    """Whether testbeds should attach a telemetry probe."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def sampling_interval() -> float:
    """The probe's sampling period, in simulated seconds."""
    raw = os.environ.get(ENV_INTERVAL, "")
    try:
        interval = float(raw) if raw else DEFAULT_INTERVAL
    except ValueError:
        interval = DEFAULT_INTERVAL
    return interval if interval > 0 else DEFAULT_INTERVAL


def ring_capacity() -> Optional[int]:
    """Ring-capacity override, or ``None`` for the bus default."""
    raw = os.environ.get(ENV_CAPACITY, "")
    try:
        capacity = int(raw) if raw else 0
    except ValueError:
        capacity = 0
    return capacity if capacity > 0 else None


# ----------------------------------------------------------------------
# per-process publish buffer
# ----------------------------------------------------------------------
def publish(run_name: str, payload: TelemetryPayload) -> None:
    """Deposit one finished run's payload in this process's buffer."""
    _published.append((run_name, payload))


def drain() -> List[Tuple[str, TelemetryPayload]]:
    """Take (and clear) everything published in this process so far."""
    drained, _published[:] = list(_published), []
    return drained


class TelemetryReport:
    """Merged telemetry of one scenario run: one payload per cell key."""

    def __init__(self) -> None:
        self._cells: Dict[Any, TelemetryPayload] = {}

    def add(self, key: Any, payloads: List[Tuple[str, TelemetryPayload]]) -> None:
        """Fold one cell's published payloads in (no-op when empty)."""
        if not payloads:
            return
        merged = TelemetryPayload.merge([payload for _name, payload in payloads])
        existing = self._cells.get(key)
        if existing is not None:
            merged = TelemetryPayload.merge([existing, merged])
        self._cells[key] = merged

    def keys(self) -> List[Any]:
        """Cell keys with telemetry, in insertion order."""
        return list(self._cells)

    def payload(self, key: Any) -> TelemetryPayload:
        """The merged payload of one cell."""
        return self._cells[key]

    def items(self) -> List[Tuple[Any, TelemetryPayload]]:
        """``(key, payload)`` pairs, in insertion order."""
        return list(self._cells.items())

    def __len__(self) -> int:
        return len(self._cells)

    def __bool__(self) -> bool:
        return bool(self._cells)


def set_last_report(report: Optional[TelemetryReport]) -> None:
    """Record the most recent scenario run's report (parent side)."""
    global _last_report
    _last_report = report


def last_report() -> Optional[TelemetryReport]:
    """The report of the most recent scenario run, if any."""
    return _last_report
