"""EWMA-residual anomaly detection over telemetry series.

The detector reuses the paper's own smoothing primitive
(:class:`~repro.metrics.ewma.EWMAFilter`, α = 1 − exp(−δt/τ)) twice per
series: once to predict the next sample (the smoothed level) and once to
track the typical deviation (an EWMA of absolute residuals).  A sample
whose residual exceeds ``threshold ×`` the tracked deviation is flagged
as a typed :class:`AnomalyEvent` — a spike or a drop, relative to the
prediction.

Edge-case semantics (pinned by tests/test_telemetry_anomaly.py):

* a constant series has zero residual and zero tracked deviation, so it
  never alarms;
* the first sample of a series *defines* the baseline — a step change
  at t=0 is a level, not an anomaly;
* a single-sample series therefore emits nothing;
* non-finite samples are rejected loudly
  (:class:`~repro.errors.MetricsValidationError`), matching the EWMA
  filter's own validation.

Detection is arithmetic over observed values only — no RNG, no
simulation state — so an attached detector never perturbs a run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import MetricsValidationError, TelemetryError
from repro.metrics.ewma import EWMAFilter


@dataclass(frozen=True)
class AnomalyEvent:
    """One detector firing: a sample far from its EWMA prediction."""

    time: float
    #: Name of the telemetry series the sample belongs to.
    series: str
    #: ``"spike"`` (above prediction) or ``"drop"`` (below).
    kind: str
    #: The observed sample.
    value: float
    #: The EWMA prediction the sample was compared against.
    expected: float
    #: ``value - expected``.
    residual: float
    #: The deviation bound the residual exceeded.
    threshold: float


class EWMAResidualDetector:
    """Per-series anomaly detector: residuals against an EWMA baseline.

    Parameters
    ----------
    series:
        Name stamped on emitted events.
    time_constant:
        τ of both the level filter and the deviation filter, seconds.
    threshold:
        Alarm multiplier: a residual beyond ``threshold × deviation``
        fires (deviation being the EWMA of past absolute residuals).
    min_samples:
        Samples to observe before the detector may fire; the deviation
        estimate needs a short warmup or the first wiggle after a flat
        start would alarm.
    """

    def __init__(
        self,
        series: str,
        time_constant: float = 5.0,
        threshold: float = 4.0,
        min_samples: int = 5,
    ) -> None:
        if threshold <= 0:
            raise TelemetryError(
                f"anomaly threshold must be positive, got {threshold!r}"
            )
        if min_samples < 1:
            raise TelemetryError(
                f"min_samples must be >= 1, got {min_samples!r}"
            )
        self.series = series
        self.threshold = threshold
        self.min_samples = min_samples
        self._level = EWMAFilter(time_constant)
        self._deviation = EWMAFilter(time_constant)
        self.samples_seen = 0

    def update(self, time: float, sample: float) -> Optional[AnomalyEvent]:
        """Observe one sample; returns an event when it is anomalous."""
        if not math.isfinite(sample):
            raise MetricsValidationError(
                f"telemetry sample for {self.series!r} must be finite, "
                f"got {sample!r}"
            )
        self.samples_seen += 1
        if self.samples_seen == 1:
            # The first sample defines the baseline: a step at t=0 is a
            # level, not an anomaly, and a single-sample series emits
            # nothing.
            self._level.update(time, sample)
            self._deviation.update(time, 0.0)
            return None
        expected = self._level.value
        assert expected is not None  # samples_seen > 1
        residual = sample - expected
        deviation = self._deviation.value or 0.0
        bound = self.threshold * deviation
        event: Optional[AnomalyEvent] = None
        if self.samples_seen > self.min_samples and deviation > 0.0:
            if abs(residual) > bound:
                event = AnomalyEvent(
                    time=time,
                    series=self.series,
                    kind="spike" if residual > 0 else "drop",
                    value=sample,
                    expected=expected,
                    residual=residual,
                    threshold=bound,
                )
        self._level.update(time, sample)
        self._deviation.update(time, abs(residual))
        return event

    def __repr__(self) -> str:
        return (
            f"EWMAResidualDetector(series={self.series!r}, "
            f"threshold={self.threshold:g}, samples={self.samples_seen})"
        )


class AnomalyMonitor:
    """A pack of per-series detectors plus the event log they feed.

    The telemetry probe calls :meth:`observe` for each watched series
    every sampling tick; fired events accumulate in :attr:`events` (and
    ride into the run's :class:`~repro.telemetry.bus.TelemetryPayload`).
    """

    def __init__(
        self,
        time_constant: float = 5.0,
        threshold: float = 4.0,
        min_samples: int = 5,
    ) -> None:
        self.time_constant = time_constant
        self.threshold = threshold
        self.min_samples = min_samples
        self._detectors: Dict[str, EWMAResidualDetector] = {}
        self.events: List[AnomalyEvent] = []

    def watch(self, series: str) -> EWMAResidualDetector:
        """Ensure a detector exists for ``series`` and return it."""
        detector = self._detectors.get(series)
        if detector is None:
            detector = EWMAResidualDetector(
                series,
                time_constant=self.time_constant,
                threshold=self.threshold,
                min_samples=self.min_samples,
            )
            self._detectors[series] = detector
        return detector

    def watched(self) -> Tuple[str, ...]:
        """Names of the series under detection, in insertion order."""
        return tuple(self._detectors)

    def observe(self, series: str, time: float, sample: float) -> Optional[AnomalyEvent]:
        """Feed one sample of a watched series; log and return any event."""
        event = self.watch(series).update(time, sample)
        if event is not None:
            self.events.append(event)
        return event

    def __repr__(self) -> str:
        return (
            f"AnomalyMonitor(detectors={len(self._detectors)}, "
            f"events={len(self.events)})"
        )
