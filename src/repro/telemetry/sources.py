"""Telemetry-fed control-plane sources.

Two adapters let existing control loops consume the telemetry bus
instead of reading node state directly, without changing a single
decision bit:

* :class:`WatchdogTelemetryFeed` — the gray-failure watchdog's
  ``sample_busy`` source.  On each watchdog tick it records every
  eligible server's busy-thread count into a per-server bus gauge and
  hands the watchdog the values *read back from those series*, so the
  detector's inputs are exactly the telemetry stream.  The recorded
  integers are the same ones a direct scoreboard read yields at the
  same simulated instant, which is why the adversarial goldens stay
  bit-identical with telemetry enabled (pinned in CI).
* :class:`TelemetryFleetMonitor` — a drop-in
  :class:`~repro.control.monitor.FleetMonitor` that additionally
  streams each fleet observation (busy fraction, smoothed fraction,
  backlog depth) onto the bus, giving the autoscaler's control signal a
  live telemetry trace at zero behavioural difference.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.control.monitor import FleetMonitor, FleetSample
from repro.server.virtual_router import ServerNode
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.recorder import FlightRecorder


class WatchdogTelemetryFeed:
    """Busy-count source for the watchdog, routed through the bus.

    Matches the ``sample_busy`` callable contract of
    :class:`~repro.control.gray_failure.GrayFailureWatchdog`: called
    once per tick with the eligible servers, returns their busy-thread
    counts by name.  Each count is recorded as the gauge
    ``watchdog.busy.<server>`` before being read back out of the series
    — the watchdog literally consumes telemetry, not scoreboards.
    """

    def __init__(
        self, bus: TelemetryBus, recorder: Optional[FlightRecorder] = None
    ) -> None:
        self.bus = bus
        self.recorder = recorder

    def __call__(
        self, now: float, servers: Sequence[ServerNode]
    ) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for server in servers:
            series = self.bus.gauge(f"watchdog.busy.{server.name}", tier="server")
            series.record(now, server.app.busy_threads)
            counts[server.name] = int(series.latest)
        return counts


class TelemetryFleetMonitor(FleetMonitor):
    """A fleet monitor that mirrors every observation onto the bus.

    ``observe`` produces byte-identical :class:`FleetSample` values to
    the base class (the bus write happens after the sample is computed
    and draws nothing), so swapping this in under telemetry cannot move
    an autoscaling decision.
    """

    def __init__(self, bus: TelemetryBus, time_constant: float = 5.0) -> None:
        super().__init__(time_constant=time_constant)
        self.bus = bus

    def observe(self, time: float, servers: Sequence[ServerNode]) -> FleetSample:
        sample = super().observe(time, servers)
        self.bus.record("fleet.busy_fraction", time, sample.busy_fraction, tier="server")
        self.bus.record(
            "fleet.smoothed_busy_fraction",
            time,
            sample.smoothed_busy_fraction,
            tier="server",
        )
        self.bus.record(
            "fleet.backlog_depth", time, float(sample.backlog_depth), tier="server"
        )
        self.bus.record(
            "fleet.serving_servers", time, float(sample.serving_servers), tier="server"
        )
        return sample
