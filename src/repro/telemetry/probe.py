"""The telemetry probe: periodic in-sim sampling of a whole testbed.

``attach_telemetry`` hangs one :class:`TelemetryProbe` off a testbed
(:func:`repro.experiments.platform.build_testbed` does this whenever
:func:`repro.telemetry.runtime.telemetry_enabled` is true).  The probe
owns the run's :class:`~repro.telemetry.bus.TelemetryBus`, its
:class:`~repro.telemetry.recorder.FlightRecorder`, and an
:class:`~repro.telemetry.anomaly.AnomalyMonitor`, and drives one
periodic sim task that snapshots every tier through the uniform
``snapshot()`` counter API:

* edge router — ECMP forward/return totals and the next-hop spread;
* LB tier — SYN dispatch, Service Hunting acceptances, steering misses;
* server tier — fleet busy fraction, backlog depth, served/reset/shed;
* fabric and fault plane — per-reason drop/delay counters;
* client — SYN retransmissions, retries, give-ups.

The sampling callback only *reads* simulation state and draws no
randomness, so an attached probe never changes run outcomes — the
scenario goldens are re-checked with telemetry enabled in CI to pin
exactly this.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.sim.engine import PeriodicTask
from repro.telemetry import runtime
from repro.telemetry.anomaly import AnomalyMonitor
from repro.telemetry.bus import TelemetryBus, TelemetryPayload
from repro.telemetry.recorder import DEFAULT_WINDOW, FlightRecorder
from repro.telemetry.sources import TelemetryFleetMonitor, WatchdogTelemetryFeed

#: Series the anomaly monitor watches by default.
DEFAULT_WATCHED = ("server.busy_fraction", "server.backlog_depth")


class TelemetryProbe:
    """One testbed's streaming telemetry: bus + recorder + detectors."""

    def __init__(
        self,
        testbed: Any,
        interval: float = runtime.DEFAULT_INTERVAL,
        capacity: Optional[int] = None,
    ) -> None:
        self.testbed = testbed
        self.interval = interval
        self.bus = TelemetryBus(**({"capacity": capacity} if capacity else {}))
        self.recorder = FlightRecorder()
        self.anomalies = AnomalyMonitor()
        for series in DEFAULT_WATCHED:
            self.anomalies.watch(series)
        #: ``(series, threshold, window)`` SLO rules; one dump each.
        self._slo_rules: List[Tuple[str, float, float]] = []
        self._slo_tripped: set = set()
        self._fault_pipeline: Any = None
        self.samples_taken = 0
        self._task = PeriodicTask(
            simulator=testbed.simulator,
            interval=interval,
            callback=self.sample,
            label="telemetry-sampler",
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic sampling (first sample at the current time)."""
        self._task.start(first_delay=0.0)

    def stop(self) -> None:
        """Take one final sample and stop the sampling task."""
        if self._task.active:
            self.sample()
            self._task.stop()

    @property
    def active(self) -> bool:
        """Whether the sampling task is ticking."""
        return self._task.active

    def watch_faults(self, pipeline: Any) -> None:
        """Start sampling a fault pipeline's per-reason counters."""
        self._fault_pipeline = pipeline

    def add_slo(
        self, series: str, threshold: float, window: float = DEFAULT_WINDOW
    ) -> None:
        """Trip a flight dump when ``series`` reaches ``threshold``."""
        self._slo_rules.append((series, threshold, window))

    # ------------------------------------------------------------------
    # control-plane sources
    # ------------------------------------------------------------------
    def watchdog_feed(self) -> WatchdogTelemetryFeed:
        """A gray-failure-watchdog busy source routed through the bus."""
        return WatchdogTelemetryFeed(self.bus, recorder=self.recorder)

    def fleet_monitor(self, time_constant: float = 5.0) -> TelemetryFleetMonitor:
        """A bus-mirroring fleet monitor for the autoscaler."""
        return TelemetryFleetMonitor(self.bus, time_constant=time_constant)

    # ------------------------------------------------------------------
    # the sampling tick
    # ------------------------------------------------------------------
    def sample(self) -> None:
        """Snapshot every tier onto the bus (read-only, no RNG)."""
        testbed = self.testbed
        now = testbed.simulator.now
        bus = self.bus
        self.samples_taken += 1

        # Edge router (tier deployments only): ECMP totals and spread.
        tier = testbed.lb_tier
        if tier is not None:
            edge = tier.router.stats.snapshot()
            for name, value in edge.items():
                bus.record(f"edge.{name}", now, value, kind="counter", tier="edge")
            shares = tier.router.stats.per_next_hop
            total = sum(shares.values())
            spread = max(shares.values()) / total if total else 0.0
            bus.record("edge.spread", now, spread, tier="edge")

        # LB tier: summed instance counters through the uniform API.
        lb_totals: Dict[str, float] = {}
        for instance in testbed.load_balancers():
            for name, value in instance.stats.snapshot().items():
                lb_totals[name] = lb_totals.get(name, 0) + value
        for name, value in lb_totals.items():
            bus.record(f"lb.{name}", now, value, kind="counter", tier="lb")

        # Server tier: busy fraction and backlog as gauges, the HTTP
        # counters as cumulative totals.
        busy = 0
        slots = 0
        backlog = 0
        http_totals: Dict[str, float] = {}
        for server in testbed.servers:
            board = server.app.scoreboard.snapshot()
            busy += board["busy"]
            slots += board["slots"]
            backlog += server.app.backlog.depth
            for name, value in server.app.stats.snapshot().items():
                http_totals[name] = http_totals.get(name, 0) + value
        bus.record(
            "server.busy_fraction", now, busy / slots if slots else 0.0,
            tier="server",
        )
        bus.record("server.backlog_depth", now, float(backlog), tier="server")
        for name, value in http_totals.items():
            bus.record(
                f"server.{name}", now, value, kind="counter", tier="server"
            )

        # Fabric and (when installed) the fault plane: drop reasons.
        for name, value in testbed.fabric.stats.snapshot().items():
            bus.record(f"fabric.{name}", now, value, kind="counter", tier="net")
        if self._fault_pipeline is not None:
            for name, value in self._fault_pipeline.stats.snapshot().items():
                bus.record(f"fault.{name}", now, value, kind="counter", tier="net")

        # Client: retransmission and retry pressure.
        client = testbed.client
        bus.record(
            "client.syn_retransmits", now, client.syn_retransmits,
            kind="counter", tier="client",
        )
        bus.record(
            "client.queries_retried", now, client.queries_retried,
            kind="counter", tier="client",
        )
        bus.record(
            "client.queries_gave_up", now, client.queries_gave_up,
            kind="counter", tier="client",
        )

        # Anomaly detection over the watched gauges, then SLO rules.
        for series in self.anomalies.watched():
            if series in bus:
                event = self.anomalies.observe(series, now, bus.series(series).latest)
                if event is not None:
                    self.recorder.record(
                        now, "anomaly", f"{event.kind}:{event.series}", event.value
                    )
        for series, threshold, window in self._slo_rules:
            if series in self._slo_tripped or series not in bus:
                continue
            if bus.series(series).latest >= threshold:
                self._slo_tripped.add(series)
                self.recorder.trip(f"slo:{series}", now, window)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export_payload(self) -> TelemetryPayload:
        """The run's merged telemetry, picklable."""
        return self.bus.export_payload(
            anomalies=tuple(self.anomalies.events),
            meta={
                "run": testbed_name(self.testbed),
                "interval": self.interval,
                "samples": self.samples_taken,
                "flight_dumps": [dump.to_json_dict() for dump in self.recorder.dumps],
                "flight_events": self.recorder.events_recorded,
            },
        )

    def publish(self) -> None:
        """Stop sampling and deposit the payload for the scenario driver."""
        self.stop()
        runtime.publish(testbed_name(self.testbed), self.export_payload())

    def __repr__(self) -> str:
        return (
            f"TelemetryProbe(interval={self.interval:g}, "
            f"series={len(self.bus)}, samples={self.samples_taken})"
        )


def testbed_name(testbed: Any) -> str:
    """The run label telemetry publishes under (the collector's name)."""
    return getattr(testbed.collector, "name", "run") or "run"


def attach_telemetry(
    testbed: Any,
    interval: Optional[float] = None,
    capacity: Optional[int] = None,
) -> TelemetryProbe:
    """Create, start and register a probe on ``testbed``.

    Also points the traffic generator's ``flight_recorder`` at the
    probe's recorder so client retransmission/give-up events feed the
    black box.  Interval/capacity default to the runtime's environment
    knobs so pool and partition workers sample identically.
    """
    probe = TelemetryProbe(
        testbed,
        interval=interval if interval is not None else runtime.sampling_interval(),
        capacity=capacity if capacity is not None else runtime.ring_capacity(),
    )
    testbed.telemetry = probe
    testbed.client.flight_recorder = probe.recorder
    probe.start()
    return probe
