"""Streaming telemetry plane: in-sim counters, flight recorder, anomaly
detection, and run dashboards.

See docs/architecture.md ("Telemetry plane") for the cast:

* :mod:`repro.telemetry.bus` — named per-tier series in fixed-size ring
  buffers, with the picklable :class:`TelemetryPayload` export;
* :mod:`repro.telemetry.recorder` — the bounded flight recorder that
  dumps the last N simulated seconds on an SLO breach or quarantine;
* :mod:`repro.telemetry.anomaly` — EWMA-residual detectors emitting
  typed :class:`AnomalyEvent` objects;
* :mod:`repro.telemetry.probe` — the periodic sampling task wired onto
  a testbed when :func:`repro.telemetry.runtime.telemetry_enabled`;
* :mod:`repro.telemetry.sources` — telemetry-fed control-plane sources
  (gray-failure watchdog feed, autoscaler fleet monitor);
* :mod:`repro.telemetry.render` — terminal sparklines and the
  self-contained HTML dashboard.

Telemetry is strictly opt-in and purely observational: with it off,
runs are bit-identical to a build without the subsystem; with it on,
sampling draws no randomness and the goldens still hold (re-checked in
CI with ``REPRO_TELEMETRY=1``).
"""

from repro.telemetry.anomaly import AnomalyEvent, AnomalyMonitor, EWMAResidualDetector
from repro.telemetry.bus import RingBuffer, TelemetryBus, TelemetryPayload, TelemetrySeries
from repro.telemetry.recorder import FlightDump, FlightEvent, FlightRecorder
from repro.telemetry.sources import TelemetryFleetMonitor, WatchdogTelemetryFeed

__all__ = [
    "AnomalyEvent",
    "AnomalyMonitor",
    "EWMAResidualDetector",
    "FlightDump",
    "FlightEvent",
    "FlightRecorder",
    "RingBuffer",
    "TelemetryBus",
    "TelemetryFleetMonitor",
    "TelemetryPayload",
    "TelemetrySeries",
    "WatchdogTelemetryFeed",
]
