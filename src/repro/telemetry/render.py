"""Telemetry rendering: terminal sparklines and a self-contained HTML
dashboard.

Both renderers consume :class:`~repro.telemetry.bus.TelemetryPayload`
objects only — they never touch a live simulation — so a payload saved
to JSON by ``--telemetry-out`` renders identically later through the
``dashboard`` CLI sub-command.  The HTML output embeds its styling and
inline SVG charts directly (no scripts, no external resources), so the
file opens anywhere and can ride as a CI artifact.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.errors import TelemetryError
from repro.telemetry.bus import TelemetryPayload

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """A block-character sparkline of ``values``, at most ``width`` wide."""
    data = np.asarray(list(values), dtype=np.float64)
    data = data[np.isfinite(data)]
    if data.size == 0:
        return ""
    if data.size > width:
        # Bucket means preserve shape better than strided picks.
        edges = np.linspace(0, data.size, width + 1).astype(np.int64)
        data = np.asarray(
            [data[lo:hi].mean() if hi > lo else data[min(lo, data.size - 1)]
             for lo, hi in zip(edges[:-1], edges[1:])]
        )
    low, high = float(data.min()), float(data.max())
    if high <= low:
        return _BLOCKS[0] * data.size
    scaled = (data - low) / (high - low) * (len(_BLOCKS) - 1)
    return "".join(_BLOCKS[int(round(level))] for level in scaled)


def render_summary(payload: TelemetryPayload, title: str = "") -> str:
    """A terminal table: one sparkline row per series."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'series':<34} {'kind':<7} {'n':>5} {'last':>12}  trend"
    lines.append(header)
    lines.append("-" * len(header))
    for index, name in enumerate(payload.names):
        values = payload.values[index]
        last = f"{values[-1]:.6g}" if values.size else "-"
        lines.append(
            f"{name:<34} {payload.kinds[index]:<7} {values.size:>5} "
            f"{last:>12}  {sparkline(values)}"
        )
    if payload.anomalies:
        lines.append("")
        lines.append(f"anomalies ({len(payload.anomalies)}):")
        for event in payload.anomalies:
            lines.append(
                f"  t={event.time:.3f}s {event.kind:<5} {event.series} "
                f"value={event.value:.6g} expected={event.expected:.6g}"
            )
    dumps = payload.meta.get("flight_dumps") or []
    if dumps:
        lines.append("")
        lines.append(f"flight dumps ({len(dumps)}):")
        for dump in dumps:
            lines.append(
                f"  {dump.get('reason', '?')} at t={dump.get('tripped_at', 0.0):.3f}s "
                f"({len(dump.get('events', []))} events)"
            )
    return "\n".join(lines)


def _svg_chart(times: np.ndarray, values: np.ndarray, width: int = 360,
               height: int = 64) -> str:
    """One inline SVG polyline chart for a series."""
    if values.size == 0:
        return f'<svg width="{width}" height="{height}"></svg>'
    t_low, t_high = float(times.min()), float(times.max())
    v_low, v_high = float(values.min()), float(values.max())
    t_span = (t_high - t_low) or 1.0
    v_span = (v_high - v_low) or 1.0
    points = " ".join(
        f"{(float(t) - t_low) / t_span * (width - 4) + 2:.1f},"
        f"{height - 2 - (float(v) - v_low) / v_span * (height - 4):.1f}"
        for t, v in zip(times, values)
    )
    return (
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}">'
        f'<polyline fill="none" stroke="#2b6cb0" stroke-width="1.5" '
        f'points="{points}"/></svg>'
    )


_PAGE_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 2em;
       background: #fafafa; color: #1a202c; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 2em; }
table { border-collapse: collapse; }
td, th { border: 1px solid #cbd5e0; padding: 4px 10px; text-align: left;
         font-size: 0.85em; vertical-align: middle; }
th { background: #edf2f7; }
.anomaly { color: #c53030; }
.meta { color: #4a5568; font-size: 0.85em; }
"""


def render_dashboard(
    payloads: Mapping[str, TelemetryPayload], title: str = "Telemetry dashboard"
) -> str:
    """A self-contained HTML dashboard over one or more cell payloads."""
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_PAGE_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
    ]
    for key, payload in payloads.items():
        parts.append(f"<h2>cell {html.escape(str(key))}</h2>")
        meta = ", ".join(
            f"{name}={value}" for name, value in payload.meta.items()
            if name != "flight_dumps"
        )
        if meta:
            parts.append(f'<p class="meta">{html.escape(meta)}</p>')
        parts.append(
            "<table><tr><th>series</th><th>kind</th><th>tier</th>"
            "<th>samples</th><th>last</th><th>trend</th></tr>"
        )
        for index, name in enumerate(payload.names):
            values = payload.values[index]
            last = f"{values[-1]:.6g}" if values.size else "-"
            parts.append(
                f"<tr><td>{html.escape(name)}</td>"
                f"<td>{payload.kinds[index]}</td>"
                f"<td>{html.escape(payload.tiers[index])}</td>"
                f"<td>{values.size}</td><td>{last}</td>"
                f"<td>{_svg_chart(payload.times[index], values)}</td></tr>"
            )
        parts.append("</table>")
        if payload.anomalies:
            parts.append(f"<h2>anomalies ({len(payload.anomalies)})</h2><ul>")
            for event in payload.anomalies:
                parts.append(
                    f'<li class="anomaly">t={event.time:.3f}s {event.kind} on '
                    f"{html.escape(event.series)}: value={event.value:.6g}, "
                    f"expected={event.expected:.6g}</li>"
                )
            parts.append("</ul>")
        dumps = payload.meta.get("flight_dumps") or []
        if dumps:
            parts.append(f"<h2>flight dumps ({len(dumps)})</h2><ul>")
            for dump in dumps:
                parts.append(
                    f"<li>{html.escape(str(dump.get('reason', '?')))} at "
                    f"t={dump.get('tripped_at', 0.0):.3f}s "
                    f"({len(dump.get('events', []))} events)</li>"
                )
            parts.append("</ul>")
    parts.append("</body></html>")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# on-disk report format (what --telemetry-out writes and dashboard reads)
# ----------------------------------------------------------------------
def report_to_json_dict(
    cells: Sequence[Tuple[Any, TelemetryPayload]]
) -> Dict[str, Any]:
    """Serialise ``(cell key, payload)`` pairs (keys stringified)."""
    return {
        "format": "repro-telemetry-report",
        "version": 1,
        "cells": [
            {"key": str(key), "payload": payload.to_json_dict()}
            for key, payload in cells
        ],
    }


def report_from_json_dict(
    data: Mapping[str, Any]
) -> List[Tuple[str, TelemetryPayload]]:
    """Parse :func:`report_to_json_dict` output (loud on wrong format)."""
    if data.get("format") != "repro-telemetry-report":
        raise TelemetryError(
            "not a telemetry report (expected format='repro-telemetry-report')"
        )
    return [
        (entry["key"], TelemetryPayload.from_json_dict(entry["payload"]))
        for entry in data.get("cells", ())
    ]


def save_report(
    path: Union[str, Path], cells: Sequence[Tuple[Any, TelemetryPayload]]
) -> Path:
    """Write a telemetry report JSON file; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(report_to_json_dict(cells), indent=2), encoding="utf-8"
    )
    return path


def load_report(path: Union[str, Path]) -> List[Tuple[str, TelemetryPayload]]:
    """Read a telemetry report JSON file back into payloads."""
    path = Path(path)
    if not path.exists():
        raise TelemetryError(f"telemetry report not found: {path}")
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise TelemetryError(f"telemetry report is not valid JSON: {exc}") from exc
    return report_from_json_dict(data)
