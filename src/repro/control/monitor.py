"""Fleet monitoring: the sensing half of the elastic control plane.

The monitor reads exactly the signals the paper's Service Hunting agent
exposes locally — the Apache scoreboard's busy-worker count and the TCP
listen-backlog depth — but aggregated fleet-wide, and smooths the busy
fraction through the paper's EWMA filter (α = 1 − exp(−δt/τ)) so the
scaling policies act on a stable signal instead of per-tick noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ReproError
from repro.metrics.ewma import EWMAFilter
from repro.server.virtual_router import ServerNode


@dataclass(frozen=True)
class FleetSample:
    """One fleet-wide observation taken by the monitor."""

    time: float
    #: Servers in rotation (warming or active) when the sample was taken.
    serving_servers: int
    #: Busy Apache workers across the serving servers.
    busy_threads: int
    #: Worker-pool capacity across the serving servers.
    total_workers: int
    #: Connections queued in listen backlogs across the serving servers.
    backlog_depth: int
    #: Instantaneous ``busy_threads / total_workers`` (0 with no servers).
    busy_fraction: float
    #: EWMA-smoothed busy fraction — what the scaling policies read.
    smoothed_busy_fraction: float


class FleetMonitor:
    """Periodic sampler of fleet busy-fraction and backlog depth.

    The autoscaler calls :meth:`observe` once per control tick with the
    servers currently in rotation; the monitor keeps the full sample
    series so the scenario figures can plot what the control loop saw.

    Parameters
    ----------
    time_constant:
        τ of the EWMA smoothing, in seconds.  The paper's Figure 4 uses
        τ = 1 s; a control loop wants a slower filter (seconds to tens
        of seconds) so a single bursty tick cannot trigger a scale-up.
    """

    def __init__(self, time_constant: float = 5.0) -> None:
        self.time_constant = time_constant
        self._filter = EWMAFilter(time_constant)
        self._samples: List[FleetSample] = []

    def observe(self, time: float, servers: Sequence[ServerNode]) -> FleetSample:
        """Sample the serving ``servers`` at ``time`` and return the result."""
        busy = sum(server.busy_threads for server in servers)
        workers = sum(server.app.scoreboard.num_slots for server in servers)
        backlog = sum(server.app.backlog.depth for server in servers)
        fraction = busy / workers if workers else 0.0
        smoothed = self._filter.update(time, fraction)
        sample = FleetSample(
            time=time,
            serving_servers=len(servers),
            busy_threads=busy,
            total_workers=workers,
            backlog_depth=backlog,
            busy_fraction=fraction,
            smoothed_busy_fraction=smoothed,
        )
        self._samples.append(sample)
        return sample

    @property
    def latest(self) -> FleetSample:
        """The most recent sample (loud before the first observation)."""
        if not self._samples:
            raise ReproError("the fleet monitor has no samples yet")
        return self._samples[-1]

    def samples(self) -> List[FleetSample]:
        """Every sample taken so far (copy)."""
        return list(self._samples)

    def busy_fraction_series(self) -> List[Tuple[float, float]]:
        """``(time, smoothed busy fraction)`` series for figures."""
        return [
            (sample.time, sample.smoothed_busy_fraction)
            for sample in self._samples
        ]

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:
        return (
            f"FleetMonitor(samples={len(self._samples)}, "
            f"tau={self.time_constant:g}s)"
        )
