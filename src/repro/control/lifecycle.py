"""Server lifecycle: provisioning, warm-up, graceful drain, detach.

Scaling a fleet is not instantaneous, and the interesting control-plane
dynamics live exactly in the transitions the instantaneous model skips:

* **provisioning delay** — a scale-up decision buys capacity that only
  arrives ``provisioning_delay`` seconds later (VM boot, image pull);
* **warm-up** — a fresh server joins the rotation at a reduced CPU
  ``speed`` (cold caches, JIT) and reaches nominal speed after
  ``warmup_duration`` seconds;
* **graceful drain** — a scale-down removes the server from every load
  balancer's candidate pool and flips the Service Hunting layer to
  refuse optional offers, but in-flight flows keep their steering
  entries and finish normally; the server detaches only once quiescent.

:class:`ServerLifecycle` drives these transitions over a
:class:`~repro.experiments.platform.Testbed` and charges every second a
server is provisioned — transitions included — to a
:class:`~repro.metrics.capacity.CapacityTracker`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.errors import ExperimentError
from repro.metrics.capacity import CapacityTracker
from repro.server.virtual_router import ServerNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Annotation-only: repro.control sits *above* repro.experiments in
    # the layering table, so it must not import it at runtime.  The
    # lifecycle only needs the testbed's add_server/retire_server/
    # simulator/config/servers surface, which any platform offering
    # those attributes satisfies.
    from repro.experiments.platform import Testbed


class ServerState(enum.Enum):
    """Where a managed server is in its life."""

    #: Capacity ordered but not yet online (boot/image-pull window).
    PROVISIONING = "provisioning"
    #: In rotation at reduced CPU speed (cold caches).
    WARMING = "warming"
    #: In rotation at nominal speed.
    ACTIVE = "active"
    #: Out of every candidate pool, finishing its in-flight flows.
    DRAINING = "draining"
    #: Fully retired; no longer paid for.
    DETACHED = "detached"


@dataclass
class ManagedServer:
    """Lifecycle record of one server (provisioned or adopted)."""

    label: str
    state: ServerState
    nominal_speed: float
    provisioned_at: float
    node: Optional[ServerNode] = None
    serving_since: Optional[float] = None
    drain_started_at: Optional[float] = None
    detached_at: Optional[float] = None

    @property
    def name(self) -> str:
        """The server's node name once online, else the pending label."""
        return self.node.name if self.node is not None else self.label


#: States that count toward committed (paid-for, non-exiting) capacity.
_COMMITTED = (ServerState.PROVISIONING, ServerState.WARMING, ServerState.ACTIVE)
#: States in which the server receives new flows.
_SERVING = (ServerState.WARMING, ServerState.ACTIVE)


class ServerLifecycle:
    """Walks servers through the elastic state machine over one testbed.

    Parameters
    ----------
    testbed:
        The platform whose fleet is managed; its
        :meth:`~repro.experiments.platform.Testbed.add_server` /
        :meth:`~repro.experiments.platform.Testbed.retire_server` hooks
        do the data-plane reprogramming.
    capacity:
        Capacity-seconds sink; created fresh when not given.
    provisioning_delay:
        Seconds between a scale-up decision and the server coming online.
    warmup_duration:
        Seconds a fresh server spends at reduced speed (0 skips warm-up).
    warmup_speed:
        CPU speed multiplier during warm-up, relative to nominal.
    drain_check_interval:
        How often a draining server is polled for quiescence.
    """

    def __init__(
        self,
        testbed: "Testbed",
        capacity: Optional[CapacityTracker] = None,
        provisioning_delay: float = 5.0,
        warmup_duration: float = 5.0,
        warmup_speed: float = 0.5,
        drain_check_interval: float = 0.5,
    ) -> None:
        if provisioning_delay < 0:
            raise ExperimentError(
                f"provisioning_delay must be non-negative, got {provisioning_delay!r}"
            )
        if warmup_duration < 0:
            raise ExperimentError(
                f"warmup_duration must be non-negative, got {warmup_duration!r}"
            )
        if not 0 < warmup_speed <= 1:
            raise ExperimentError(
                f"warmup_speed must be in (0, 1], got {warmup_speed!r}"
            )
        if drain_check_interval <= 0:
            raise ExperimentError(
                f"drain_check_interval must be positive, got {drain_check_interval!r}"
            )
        self.testbed = testbed
        self.simulator = testbed.simulator
        self.provisioning_delay = provisioning_delay
        self.warmup_duration = warmup_duration
        self.warmup_speed = warmup_speed
        self.drain_check_interval = drain_check_interval
        now = self.simulator.now
        self.capacity = (
            capacity if capacity is not None else CapacityTracker(start_time=now)
        )
        self.records: List[ManagedServer] = []
        self._provision_counter = 0
        # Adopt the testbed's initial fleet as ACTIVE members.
        for server in testbed.servers:
            self.records.append(
                ManagedServer(
                    label=server.name,
                    state=ServerState.ACTIVE,
                    nominal_speed=server.app.cpu.speed,
                    provisioned_at=now,
                    node=server,
                    serving_since=now,
                )
            )
        self._record_capacity()

    # ------------------------------------------------------------------
    # capacity accounting
    # ------------------------------------------------------------------
    def provisioned_capacity(self) -> float:
        """Speed-weighted cores currently paid for (everything not detached)."""
        cores = self.testbed.config.cores_per_server
        return float(
            sum(
                cores * record.nominal_speed
                for record in self.records
                if record.state is not ServerState.DETACHED
            )
        )

    def _record_capacity(self) -> None:
        self.capacity.record(self.simulator.now, self.provisioned_capacity())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def committed_count(self) -> int:
        """Servers paid for and not on their way out."""
        return sum(1 for record in self.records if record.state in _COMMITTED)

    def serving_nodes(self) -> List[ServerNode]:
        """Nodes currently in rotation (warming or active)."""
        return [
            record.node
            for record in self.records
            if record.state in _SERVING and record.node is not None
        ]

    def in_state(self, state: ServerState) -> List[ManagedServer]:
        """Records currently in ``state``."""
        return [record for record in self.records if record.state is state]

    def record_for(self, name: str) -> ManagedServer:
        """The lifecycle record of one server (loud when unknown)."""
        for record in self.records:
            if record.name == name:
                return record
        raise ExperimentError(f"no lifecycle record for server {name!r}")

    # ------------------------------------------------------------------
    # scale-up path
    # ------------------------------------------------------------------
    def provision(self, speed: float = 1.0) -> ManagedServer:
        """Order one server; it joins the rotation after the boot delay."""
        self._provision_counter += 1
        record = ManagedServer(
            label=f"provisioning-{self._provision_counter}",
            state=ServerState.PROVISIONING,
            nominal_speed=speed,
            provisioned_at=self.simulator.now,
        )
        self.records.append(record)
        self._record_capacity()
        self.simulator.schedule_in(
            self.provisioning_delay,
            lambda: self._bring_online(record),
            label="server-provision",
        )
        return record

    def _bring_online(self, record: ManagedServer) -> None:
        """End of the boot window: attach the server, start warm-up."""
        warm = self.warmup_duration > 0
        initial_speed = (
            record.nominal_speed * self.warmup_speed
            if warm
            else record.nominal_speed
        )
        record.node = self.testbed.add_server(speed=initial_speed)
        record.serving_since = self.simulator.now
        if warm:
            record.state = ServerState.WARMING
            self.simulator.schedule_in(
                self.warmup_duration,
                lambda: self._finish_warmup(record),
                label="server-warmup",
            )
        else:
            record.state = ServerState.ACTIVE

    def _finish_warmup(self, record: ManagedServer) -> None:
        if record.state is not ServerState.WARMING:
            return  # drained mid-warm-up
        record.node.app.cpu.set_speed(record.nominal_speed)
        record.state = ServerState.ACTIVE

    # ------------------------------------------------------------------
    # scale-down path
    # ------------------------------------------------------------------
    def drainable(self) -> List[ManagedServer]:
        """Active records eligible for a drain, newest first (LIFO).

        Draining the most recently added server first keeps the stable
        core of the fleet (and its warmed caches) intact — the standard
        scale-in order of real autoscaling groups.
        """
        # Records are appended in provisioning order, so reversing the
        # active subset is newest-first even among same-instant adoptions
        # (where a sort on provisioned_at alone would be stable-but-FIFO).
        return list(reversed(self.in_state(ServerState.ACTIVE)))

    def drain(self, record: ManagedServer) -> None:
        """Start a graceful drain: no new flows, in-flight ones finish."""
        if record.state not in _SERVING:
            raise ExperimentError(
                f"cannot drain server {record.name!r} in state {record.state.value!r}"
            )
        if record.node is None:  # pragma: no cover - serving implies a node
            raise ExperimentError(f"server {record.name!r} has no node to drain")
        # Reprogram the data plane first: retire_server can refuse (e.g.
        # it would empty a backend pool), and a refused drain must leave
        # the lifecycle record untouched and retryable.
        self.testbed.retire_server(record.node)
        record.state = ServerState.DRAINING
        record.drain_started_at = self.simulator.now
        # The first quiescence check waits one interval: a candidate
        # list naming this server may still be in flight on the fabric,
        # and its forced accept must land before "quiescent" means done.
        self.simulator.schedule_in(
            self.drain_check_interval,
            lambda: self._check_drain(record),
            label="server-drain-check",
        )

    def _check_drain(self, record: ManagedServer) -> None:
        """Detach once quiescent; else poll again after the check interval."""
        if record.node.quiescent:
            record.state = ServerState.DETACHED
            record.detached_at = self.simulator.now
            self.capacity.record_drain(
                record.detached_at - record.drain_started_at
            )
            self._record_capacity()
            return
        self.simulator.schedule_in(
            self.drain_check_interval,
            lambda: self._check_drain(record),
            label="server-drain-check",
        )

    def __repr__(self) -> str:
        counts = {
            state.value: len(self.in_state(state)) for state in ServerState
        }
        populated = ", ".join(
            f"{state}={count}" for state, count in counts.items() if count
        )
        return f"ServerLifecycle({populated})"
