"""Pluggable scaling policies: the deciding half of the control plane.

A scaling policy maps the monitor's smoothed fleet signal to a desired
capacity step: +1 (provision a server), −1 (drain one), or 0.  Bounds
(min/max fleet size) and cooldown are enforced by the
:class:`~repro.control.autoscaler.Autoscaler`, so policies stay pure
signal→step functions — mirroring how the paper keeps the acceptance
*policy* separate from the Service Hunting *mechanism*.

Two built-ins:

* :class:`ReactiveThresholdPolicy` — classic threshold rule with
  hysteresis: scale up above ``high``, down below ``low``; the gap
  between the watermarks is what keeps the fleet from oscillating.
* :class:`PredictiveEwmaPolicy` — EWMA-slope extrapolation: forecast
  the busy fraction ``horizon`` seconds ahead from the smoothed signal's
  trend and apply the thresholds to the *forecast*, so the fleet starts
  provisioning while the diurnal ramp is still climbing (absorbing the
  provisioning delay instead of paying for it in latency).
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.control.monitor import FleetSample
from repro.errors import ReproError
from repro.metrics.ewma import EWMAFilter


class ScalingPolicy(abc.ABC):
    """Maps a fleet sample to a desired capacity step (+1 / 0 / −1)."""

    #: Short name used in reports and scenario cell keys.
    name: str = "scaling-policy"

    @abc.abstractmethod
    def desired_step(self, sample: FleetSample) -> int:
        """The capacity step this sample calls for.

        Called once per control tick, with samples in strictly
        increasing time order.  Policies may keep internal state (the
        predictive policy tracks the signal's slope).
        """

    def reset(self) -> None:
        """Forget internal state (between experiment runs)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def _validate_watermarks(low: float, high: float) -> None:
    if not 0.0 <= low < high <= 1.0:
        raise ReproError(
            f"watermarks must satisfy 0 <= low < high <= 1, got "
            f"low={low!r} high={high!r}"
        )


class ReactiveThresholdPolicy(ScalingPolicy):
    """Threshold rule with hysteresis on the smoothed busy fraction.

    Scale up when the smoothed busy fraction exceeds ``high``; scale
    down when it falls below ``low``.  The dead band between the
    watermarks is the hysteresis: after a scale-up dilutes the busy
    fraction, the signal lands *inside* the band and the policy holds
    steady instead of immediately draining what it just provisioned.
    """

    def __init__(self, low: float = 0.35, high: float = 0.7) -> None:
        _validate_watermarks(low, high)
        self.low = low
        self.high = high
        self.name = f"reactive[{low:g},{high:g}]"

    def desired_step(self, sample: FleetSample) -> int:
        signal = sample.smoothed_busy_fraction
        if signal > self.high:
            return 1
        if signal < self.low:
            return -1
        return 0


class PredictiveEwmaPolicy(ScalingPolicy):
    """EWMA-slope extrapolation of the busy fraction.

    Maintains an EWMA of the smoothed signal's derivative and applies
    the reactive watermarks to ``signal + slope * horizon`` — the
    forecast at the moment a server provisioned *now* would come online.
    A rising ramp therefore triggers the scale-up one provisioning delay
    early, and a falling ramp holds capacity a little longer (the
    forecast undershoots), which is exactly the asymmetry a diurnal
    pattern wants.
    """

    def __init__(
        self,
        low: float = 0.35,
        high: float = 0.7,
        horizon: float = 15.0,
        slope_time_constant: float = 10.0,
    ) -> None:
        _validate_watermarks(low, high)
        if horizon <= 0:
            raise ReproError(f"forecast horizon must be positive, got {horizon!r}")
        self.low = low
        self.high = high
        self.horizon = horizon
        self.slope_time_constant = slope_time_constant
        self._slope = EWMAFilter(slope_time_constant)
        self._previous: Optional[FleetSample] = None
        self.name = f"predictive[{low:g},{high:g},+{horizon:g}s]"

    def forecast(self, sample: FleetSample) -> float:
        """The busy fraction expected ``horizon`` seconds after ``sample``."""
        slope = self._slope.value or 0.0
        return sample.smoothed_busy_fraction + slope * self.horizon

    def desired_step(self, sample: FleetSample) -> int:
        if self._previous is not None:
            delta_t = sample.time - self._previous.time
            if delta_t > 0:
                instantaneous = (
                    sample.smoothed_busy_fraction
                    - self._previous.smoothed_busy_fraction
                ) / delta_t
                self._slope.update(sample.time, instantaneous)
        self._previous = sample
        forecast = self.forecast(sample)
        if forecast > self.high:
            return 1
        if forecast < self.low and sample.smoothed_busy_fraction < self.high:
            return -1
        return 0

    def reset(self) -> None:
        self._slope.reset()
        self._previous = None


def make_scaling_policy(
    name: str,
    low: float = 0.35,
    high: float = 0.7,
    horizon: float = 15.0,
    slope_time_constant: float = 10.0,
) -> ScalingPolicy:
    """Factory for scaling policies, keyed by a configuration string.

    Recognised names: ``reactive`` and ``predictive``.  (``static`` —
    no autoscaler at all — is a provisioning *mode* of the autoscale
    scenario, not a policy.)
    """
    if name == "reactive":
        return ReactiveThresholdPolicy(low=low, high=high)
    if name == "predictive":
        return PredictiveEwmaPolicy(
            low=low,
            high=high,
            horizon=horizon,
            slope_time_constant=slope_time_constant,
        )
    raise ReproError(f"unknown scaling policy {name!r}")
