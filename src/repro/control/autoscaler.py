"""The autoscaler: monitor → policy → lifecycle, once per control tick.

One periodic loop ties the control plane together: sample the serving
fleet through the :class:`~repro.control.monitor.FleetMonitor`, ask the
:class:`~repro.control.policy.ScalingPolicy` for a desired capacity
step, and — subject to fleet-size bounds and a cooldown — apply it
through the :class:`~repro.control.lifecycle.ServerLifecycle`.  Every
applied action is recorded as a
:class:`~repro.metrics.capacity.ScalingEvent` on the lifecycle's
capacity tracker, so cost and churn are first-class outputs of a run.
"""

from __future__ import annotations

from typing import Optional

from repro.control.lifecycle import ServerLifecycle
from repro.control.monitor import FleetMonitor, FleetSample
from repro.control.policy import ScalingPolicy
from repro.errors import ExperimentError
from repro.metrics.capacity import ScalingEvent
from repro.sim.engine import PeriodicTask


class Autoscaler:
    """Periodic control loop growing and shrinking the server fleet.

    Parameters
    ----------
    lifecycle:
        The state machine (and, through it, the testbed) actions are
        applied to.
    monitor:
        Fleet sampler providing the smoothed control signal.
    policy:
        Scaling policy mapping samples to desired steps.
    min_servers / max_servers:
        Inclusive bounds on the *committed* fleet size (provisioning +
        warming + active; draining servers are already on their way out
        and do not count).
    interval:
        Control-tick period, in seconds.
    scale_up_cooldown / scale_down_cooldown:
        Minimum time after *any* applied action before the next scale-up
        (resp. scale-down).  The asymmetry is deliberate and standard: a
        climbing ramp needs capacity ordered back-to-back (short up
        cooldown), while scale-downs must wait out the signal dilution
        the previous action caused (long down cooldown) or the fleet
        cascades to the floor.
    """

    def __init__(
        self,
        lifecycle: ServerLifecycle,
        monitor: FleetMonitor,
        policy: ScalingPolicy,
        min_servers: int,
        max_servers: int,
        interval: float = 1.0,
        scale_up_cooldown: float = 4.0,
        scale_down_cooldown: float = 15.0,
    ) -> None:
        if min_servers < 1:
            raise ExperimentError(
                f"min_servers must be at least 1, got {min_servers!r}"
            )
        if max_servers < min_servers:
            raise ExperimentError(
                f"max_servers ({max_servers!r}) must be >= min_servers "
                f"({min_servers!r})"
            )
        if interval <= 0:
            raise ExperimentError(f"interval must be positive, got {interval!r}")
        for name, value in (
            ("scale_up_cooldown", scale_up_cooldown),
            ("scale_down_cooldown", scale_down_cooldown),
        ):
            if value < 0:
                raise ExperimentError(
                    f"{name} must be non-negative, got {value!r}"
                )
        self.lifecycle = lifecycle
        self.monitor = monitor
        self.policy = policy
        self.min_servers = min_servers
        self.max_servers = max_servers
        self.interval = interval
        self.scale_up_cooldown = scale_up_cooldown
        self.scale_down_cooldown = scale_down_cooldown
        self.simulator = lifecycle.simulator
        self.ticks = 0
        #: Desired steps vetoed by bounds or cooldown (observability).
        self.suppressed_actions = 0
        self._last_action_at: Optional[float] = None
        self._task: Optional[PeriodicTask] = None

    # ------------------------------------------------------------------
    # loop management
    # ------------------------------------------------------------------
    def start(self, first_delay: Optional[float] = None) -> None:
        """Start ticking (first tick after ``first_delay``, default one interval)."""
        if self._task is not None and self._task.active:
            return
        self._task = PeriodicTask(
            simulator=self.simulator,
            interval=self.interval,
            callback=self.tick,
            label="autoscaler-tick",
        )
        self._task.start(first_delay=first_delay)

    def stop(self) -> None:
        """Stop the control loop (in-progress drains still complete)."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    @property
    def active(self) -> bool:
        """Whether the control loop is currently ticking."""
        return self._task is not None and self._task.active

    # ------------------------------------------------------------------
    # one control tick
    # ------------------------------------------------------------------
    def tick(self) -> Optional[FleetSample]:
        """Sample, decide, and (maybe) act; returns the sample taken."""
        self.ticks += 1
        serving = self.lifecycle.serving_nodes()
        sample = self.monitor.observe(self.simulator.now, serving)
        step = self.policy.desired_step(sample)
        if step == 0:
            return sample
        cooldown = (
            self.scale_up_cooldown if step > 0 else self.scale_down_cooldown
        )
        if self._in_cooldown(cooldown):
            self.suppressed_actions += 1
            return sample
        if step > 0:
            self._scale_up(sample)
        else:
            self._scale_down(sample)
        return sample

    def _in_cooldown(self, cooldown: float) -> bool:
        return (
            self._last_action_at is not None
            and self.simulator.now - self._last_action_at < cooldown
        )

    def _scale_up(self, sample: FleetSample) -> None:
        committed = self.lifecycle.committed_count()
        if committed >= self.max_servers:
            self.suppressed_actions += 1
            return
        self.lifecycle.provision()
        self._record_action("scale-up", sample, committed, committed + 1)

    def _scale_down(self, sample: FleetSample) -> None:
        committed = self.lifecycle.committed_count()
        victims = self.lifecycle.drainable()
        # Bound on the *serving* fleet as well as the committed one: a
        # PROVISIONING server counts toward committed but is not in any
        # backend pool yet, so a drain while it boots could shrink the
        # pool below min_servers — and min_servers is what guarantees
        # candidate selection stays satisfiable (the config requires
        # min_servers >= num_candidates).
        serving = len(self.lifecycle.serving_nodes())
        if committed <= self.min_servers or serving <= self.min_servers or not victims:
            self.suppressed_actions += 1
            return
        self.lifecycle.drain(victims[0])
        self._record_action("scale-down", sample, committed, committed - 1)

    def _record_action(
        self, action: str, sample: FleetSample, before: int, after: int
    ) -> None:
        self._last_action_at = self.simulator.now
        self.lifecycle.capacity.record_event(
            ScalingEvent(
                time=self.simulator.now,
                action=action,
                signal=sample.smoothed_busy_fraction,
                servers_before=before,
                servers_after=after,
            )
        )

    def __repr__(self) -> str:
        return (
            f"Autoscaler(policy={self.policy.name!r}, "
            f"bounds=[{self.min_servers}, {self.max_servers}], "
            f"ticks={self.ticks})"
        )
