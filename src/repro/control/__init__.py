"""Elastic control plane: monitoring, scaling policies, server lifecycle.

The paper's data plane (SRv6 Service Hunting over a *fixed* server pool)
composes naturally with the elastic control planes real deployments of
this architecture run: a monitor samples fleet load, a scaling policy
decides when capacity should grow or shrink, and a lifecycle machine
walks each server through provisioning → warm-up → active → graceful
drain → detach, reprogramming the load-balancer layer at every step.

The pieces, each usable on its own:

* :class:`~repro.control.monitor.FleetMonitor` — periodic sampling of
  scoreboard busy-fraction and backlog depth, smoothed through the
  paper's :class:`~repro.metrics.ewma.EWMAFilter`;
* :mod:`repro.control.policy` — pluggable scaling policies: a reactive
  threshold rule with hysteresis, and a predictive EWMA-slope rule;
* :class:`~repro.control.lifecycle.ServerLifecycle` — the per-server
  state machine, including capacity-seconds accounting via
  :class:`~repro.metrics.capacity.CapacityTracker`;
* :class:`~repro.control.autoscaler.Autoscaler` — the control loop
  tying the three together over a
  :class:`~repro.experiments.platform.Testbed`.

The ``autoscale`` scenario family
(:mod:`repro.experiments.autoscale_experiment`) runs this control plane
against a diurnal workload and compares it to static over-provisioning.
"""

from repro.control.autoscaler import Autoscaler
from repro.control.gray_failure import (
    GrayFailureInjector,
    GrayFailureWatchdog,
    QuarantineEvent,
)
from repro.control.lifecycle import ManagedServer, ServerLifecycle, ServerState
from repro.control.monitor import FleetMonitor, FleetSample
from repro.control.policy import (
    PredictiveEwmaPolicy,
    ReactiveThresholdPolicy,
    ScalingPolicy,
    make_scaling_policy,
)

__all__ = [
    "Autoscaler",
    "FleetMonitor",
    "FleetSample",
    "GrayFailureInjector",
    "GrayFailureWatchdog",
    "ManagedServer",
    "QuarantineEvent",
    "PredictiveEwmaPolicy",
    "ReactiveThresholdPolicy",
    "ScalingPolicy",
    "ServerLifecycle",
    "ServerState",
    "make_scaling_policy",
]
