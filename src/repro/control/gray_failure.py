"""Gray failures: servers that get slow instead of dying.

Crash failures are the easy case — the load balancer stops receiving
steering SYN-ACKs and the flow simply re-offers elsewhere.  The failure
mode that actually hurts power-of-two-choices dispatch is the *gray*
one: a server whose CPU silently degrades keeps accepting connections
(its scoreboard still has idle workers when the SYN arrives) but serves
them slowly, so its busy count creeps up, its acceptance threshold keeps
admitting work, and the fleet's tail latency inflates long before
anything "fails".

Two pieces model this:

* :class:`GrayFailureInjector` degrades a victim server's CPU ``speed``
  at a scheduled time, optionally wobbling it around the degraded value
  (deterministic square-wave jitter — no RNG, so runs stay bit-identical
  across worker counts), and can restore it later.
* :class:`GrayFailureWatchdog` is the control-plane counterpart: a
  periodic detector comparing each server's busy-thread count against
  the fleet median.  A server persistently above ``slow_factor ×``
  median is *quarantined* — the watchdog records a
  :class:`QuarantineEvent` and invokes a callback, which the adversarial
  scenario wires to a graceful drain plus replacement provisioning (the
  autoscaler's reaction to non-crash degradation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set

from repro.errors import ExperimentError
from repro.server.virtual_router import ServerNode
from repro.sim.engine import PeriodicTask, Simulator

#: Busy-count source: called once per tick with the eligible servers,
#: returns each server's busy-thread count by name.  The default reads
#: the scoreboards directly; the telemetry plane substitutes
#: :class:`repro.telemetry.sources.WatchdogTelemetryFeed`, which routes
#: the same integers through bus series (bit-identical decisions).
BusySource = Callable[[float, Sequence[ServerNode]], Mapping[str, int]]


def _direct_busy_sample(
    now: float, servers: Sequence[ServerNode]
) -> Mapping[str, int]:
    """The scoreboard-reading default busy source."""
    return {server.name: server.app.busy_threads for server in servers}


class GrayFailureInjector:
    """Degrade one server's CPU speed without killing it.

    Parameters
    ----------
    simulator:
        Shared simulation engine.
    server:
        The victim.
    degraded_factor:
        Multiplier (in ``(0, 1)``) applied to the server's nominal speed
        at ``start_at``.
    start_at:
        Absolute simulation time the degradation begins.
    duration:
        When given, nominal speed is restored this many seconds after
        the degradation started; ``None`` leaves the server degraded.
    jitter_amplitude:
        When positive, the degraded speed wobbles by ``± amplitude``
        (relative) every ``jitter_interval`` seconds — a deterministic
        square wave modelling the erratic latency of a failing part.
    jitter_interval:
        Period of the wobble (required positive when jitter is on).
    """

    def __init__(
        self,
        simulator: Simulator,
        server: ServerNode,
        degraded_factor: float = 0.25,
        start_at: float = 0.0,
        duration: Optional[float] = None,
        jitter_amplitude: float = 0.0,
        jitter_interval: float = 0.5,
    ) -> None:
        if not 0 < degraded_factor < 1:
            raise ExperimentError(
                f"degraded factor must be in (0, 1), got {degraded_factor!r}"
            )
        if start_at < 0:
            raise ExperimentError(
                f"start time must be non-negative, got {start_at!r}"
            )
        if duration is not None and duration <= 0:
            raise ExperimentError(
                f"duration must be positive, got {duration!r}"
            )
        if not 0 <= jitter_amplitude < 1:
            raise ExperimentError(
                f"jitter amplitude must be in [0, 1), got {jitter_amplitude!r}"
            )
        if jitter_amplitude > 0 and jitter_interval <= 0:
            raise ExperimentError(
                f"jitter interval must be positive, got {jitter_interval!r}"
            )
        self.simulator = simulator
        self.server = server
        self.degraded_factor = degraded_factor
        self.start_at = start_at
        self.duration = duration
        self.jitter_amplitude = jitter_amplitude
        self.jitter_interval = jitter_interval
        self.active = False
        self.degraded_at: Optional[float] = None
        self.restored_at: Optional[float] = None
        self._nominal_speed: Optional[float] = None
        self._jitter_task: Optional[PeriodicTask] = None
        self._jitter_phase = 0

    def start(self) -> None:
        """Arm the injector (schedules the degradation)."""
        self.simulator.schedule_at(
            self.start_at, self._degrade, label="gray-degrade"
        )
        if self.duration is not None:
            self.simulator.schedule_at(
                self.start_at + self.duration, self.restore, label="gray-restore"
            )

    def _degrade(self) -> None:
        if self.active:
            return
        self._nominal_speed = self.server.app.cpu.speed
        self.active = True
        self.degraded_at = self.simulator.now
        self.server.app.cpu.set_speed(self._nominal_speed * self.degraded_factor)
        if self.jitter_amplitude > 0:
            self._jitter_task = PeriodicTask(
                self.simulator,
                self.jitter_interval,
                self._wobble,
                label="gray-jitter",
            )
            self._jitter_task.start()

    def _wobble(self) -> None:
        if not self.active or self._nominal_speed is None:
            return
        self._jitter_phase += 1
        swing = (
            1 + self.jitter_amplitude
            if self._jitter_phase % 2
            else 1 - self.jitter_amplitude
        )
        self.server.app.cpu.set_speed(
            self._nominal_speed * self.degraded_factor * swing
        )

    def restore(self) -> None:
        """Return the server to nominal speed and stop the wobble."""
        if not self.active or self._nominal_speed is None:
            return
        if self._jitter_task is not None:
            self._jitter_task.stop()
            self._jitter_task = None
        self.active = False
        self.restored_at = self.simulator.now
        self.server.app.cpu.set_speed(self._nominal_speed)

    def __repr__(self) -> str:
        return (
            f"GrayFailureInjector(server={self.server.name!r}, "
            f"factor={self.degraded_factor:g}, active={self.active})"
        )


@dataclass(frozen=True)
class QuarantineEvent:
    """One watchdog quarantine decision."""

    time: float
    server: str
    busy_threads: int
    fleet_median: float
    strikes: int


class GrayFailureWatchdog:
    """Median-relative slow-server detector (the quarantine signal).

    Every ``interval`` seconds the watchdog compares each serving
    (non-draining) server's busy-thread count against the fleet median.
    A server needs ``consecutive`` ticks above ``slow_factor × median``
    (and at least ``min_busy`` busy threads, so an idle fleet never
    trips it) to be quarantined; any compliant tick resets its strikes.
    Detection is purely observational — the ``on_quarantine`` callback
    decides what quarantine *means* (the adversarial scenario drains the
    victim through the server lifecycle and provisions a replacement).

    ``sample_busy`` pluggs the busy-count source: by default the
    watchdog reads each scoreboard directly; under telemetry it is
    handed a :class:`repro.telemetry.sources.WatchdogTelemetryFeed`
    that records the counts as bus gauges and returns the values read
    back from those series.  Both sources observe the same integers at
    the same simulated instant, so decisions are bit-identical — the
    adversarial goldens pin this with telemetry on and off.
    """

    def __init__(
        self,
        simulator: Simulator,
        servers: Callable[[], Sequence[ServerNode]],
        on_quarantine: Optional[Callable[[ServerNode], None]] = None,
        interval: float = 0.5,
        slow_factor: float = 2.0,
        min_busy: int = 2,
        consecutive: int = 3,
        max_quarantines: int = 1,
        sample_busy: Optional[BusySource] = None,
    ) -> None:
        if interval <= 0:
            raise ExperimentError(
                f"watchdog interval must be positive, got {interval!r}"
            )
        if slow_factor <= 1:
            raise ExperimentError(
                f"slow factor must be > 1, got {slow_factor!r}"
            )
        if min_busy < 1:
            raise ExperimentError(f"min_busy must be >= 1, got {min_busy!r}")
        if consecutive < 1:
            raise ExperimentError(
                f"consecutive must be >= 1, got {consecutive!r}"
            )
        if max_quarantines < 1:
            raise ExperimentError(
                f"max_quarantines must be >= 1, got {max_quarantines!r}"
            )
        self.simulator = simulator
        self._servers = servers
        self.on_quarantine = on_quarantine
        self.interval = interval
        self.slow_factor = slow_factor
        self.min_busy = min_busy
        self.consecutive = consecutive
        self.max_quarantines = max_quarantines
        self.sample_busy: BusySource = (
            sample_busy if sample_busy is not None else _direct_busy_sample
        )
        self.events: List[QuarantineEvent] = []
        self.ticks = 0
        self._strikes: Dict[str, int] = {}
        self._quarantined: Set[str] = set()
        self._task = PeriodicTask(
            simulator, interval, self._tick, label="gray-watchdog"
        )

    def start(self, first_delay: Optional[float] = None) -> None:
        """Begin periodic detection."""
        self._task.start(first_delay)

    def stop(self) -> None:
        """Stop detection (horizon hook)."""
        self._task.stop()

    @property
    def active(self) -> bool:
        return self._task.active

    def _tick(self) -> None:
        self.ticks += 1
        servers = [
            server
            for server in self._servers()
            if not server.draining and server.name not in self._quarantined
        ]
        if len(servers) < 2:
            return
        counts = self.sample_busy(self.simulator.now, servers)
        busy = sorted(counts[server.name] for server in servers)
        # Upper median over integers: deterministic, no float .5 cases.
        median = busy[len(busy) // 2]
        threshold = max(self.min_busy, self.slow_factor * median)
        for server in servers:
            count = counts[server.name]
            if count >= threshold and count > median:
                strikes = self._strikes.get(server.name, 0) + 1
                self._strikes[server.name] = strikes
                if (
                    strikes >= self.consecutive
                    and len(self._quarantined) < self.max_quarantines
                ):
                    self._quarantine(server, count, median, strikes)
            else:
                self._strikes[server.name] = 0

    def _quarantine(
        self, server: ServerNode, busy: int, median: float, strikes: int
    ) -> None:
        self._quarantined.add(server.name)
        self.events.append(
            QuarantineEvent(
                time=self.simulator.now,
                server=server.name,
                busy_threads=busy,
                fleet_median=float(median),
                strikes=strikes,
            )
        )
        if self.on_quarantine is not None:
            self.on_quarantine(server)

    @property
    def quarantined(self) -> Sequence[str]:
        """Names of quarantined servers (insertion order not guaranteed)."""
        return tuple(sorted(self._quarantined))

    def __repr__(self) -> str:
        return (
            f"GrayFailureWatchdog(interval={self.interval:g}, "
            f"quarantined={sorted(self._quarantined)!r})"
        )
