"""TCP listen backlog with ``tcp_abort_on_overflow`` semantics.

The paper configures each Apache server with a TCP backlog of 128 and
enables the Linux ``tcp_abort_on_overflow`` sysctl, so that a connection
arriving when the accept queue is full is answered with a TCP RST rather
than silently dropped.  This keeps SYN-retransmission timeouts out of the
response-time measurements and is also how the saturation rate λ₀ is
defined ("the smallest value of λ for which some TCP connections were
dropped").

:class:`ListenBacklog` models the accept queue: connections enter when
the handshake is answered and leave when a worker accepts them.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.errors import BacklogOverflowError, ServerError


class ListenBacklog:
    """Bounded FIFO accept queue for one listening socket.

    Items are opaque connection identifiers (the server keeps the full
    connection state elsewhere); this class only owns the admission and
    ordering decisions.
    """

    def __init__(self, capacity: int, abort_on_overflow: bool = True) -> None:
        if capacity <= 0:
            raise ServerError(f"backlog capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self.abort_on_overflow = abort_on_overflow
        self._queue: Deque[int] = deque()
        self._members: set = set()
        self.total_admitted = 0
        self.total_rejected = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of connections currently waiting to be accepted."""
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        """Whether a new connection would overflow the queue."""
        return len(self._queue) >= self.capacity

    def try_admit(self, connection_id: int) -> bool:
        """Admit a connection if there is room.

        Returns ``True`` on success.  On overflow, increments the reject
        counter and either returns ``False`` (``abort_on_overflow``,
        meaning the caller should send a RST) or raises
        :class:`~repro.errors.BacklogOverflowError` (strict mode, used by
        tests that want overflow to be loud).
        """
        if connection_id in self._members:
            raise ServerError(
                f"connection {connection_id!r} is already in the backlog"
            )
        if self.is_full:
            self.total_rejected += 1
            if self.abort_on_overflow:
                return False
            raise BacklogOverflowError(
                f"listen backlog overflow (capacity {self.capacity})"
            )
        self._queue.append(connection_id)
        self._members.add(connection_id)
        self.total_admitted += 1
        return True

    # ------------------------------------------------------------------
    # acceptance by workers
    # ------------------------------------------------------------------
    def pop_next(self) -> Optional[int]:
        """Remove and return the oldest waiting connection (or ``None``)."""
        if not self._queue:
            return None
        connection_id = self._queue.popleft()
        self._members.discard(connection_id)
        return connection_id

    def peek_next(self) -> Optional[int]:
        """The oldest waiting connection without removing it."""
        if not self._queue:
            return None
        return self._queue[0]

    def remove(self, connection_id: int) -> bool:
        """Remove a specific connection (e.g. reset by the client)."""
        if connection_id not in self._members:
            return False
        self._members.discard(connection_id)
        self._queue.remove(connection_id)
        return True

    def __contains__(self, connection_id: int) -> bool:
        return connection_id in self._members

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        return (
            f"ListenBacklog(depth={self.depth}, capacity={self.capacity}, "
            f"rejected={self.total_rejected})"
        )
