"""Apache-style scoreboard.

Apache httpd keeps a *scoreboard* in shared memory: one slot per worker,
recording whether that worker is idle or busy (plus finer-grained states
we do not need here).  The paper's server agent reads this shared memory
directly — "done through shared memory, this incurs no system calls or
synchronization" — to learn how many worker threads are busy.

In the simulation the scoreboard is a plain in-process object updated by
the worker pool and read by the application agent.  It also keeps simple
aggregate statistics (peak busy workers, busy-worker time integral) that
the metrics pipeline uses for Figure 4.

Mirroring the real thing, the slot column is a flat ``array('B')`` of
0/1 flags rather than a list of enum members: every request start and
completion toggles a slot, and an unboxed byte store beats a list slot
holding an enum reference both in time and in memory (one byte per
worker instead of one pointer).  The :class:`WorkerState` enum remains
the public vocabulary — :meth:`state_of` and friends translate at the
API boundary.
"""

from __future__ import annotations

import enum
from array import array
from typing import Dict

from repro.errors import ServerError
from repro.sim.clock import SimulationClock


class WorkerState(enum.Enum):
    """Per-slot worker state (a reduced version of Apache's states)."""

    IDLE = "idle"
    BUSY = "busy"


#: Slot-column encoding of the two states.
_IDLE = 0
_BUSY = 1


class Scoreboard:
    """Shared-memory view of worker-thread states for one server.

    Parameters
    ----------
    clock:
        Simulation clock, used to maintain the busy-time integral.
    num_slots:
        Number of worker slots (the server's ``MaxRequestWorkers``).
    """

    def __init__(self, clock: SimulationClock, num_slots: int) -> None:
        if num_slots <= 0:
            raise ServerError(f"scoreboard needs at least one slot, got {num_slots!r}")
        self._clock = clock
        self._slots = array("B", bytes(num_slots))
        self._busy_count = 0
        self._peak_busy = 0
        self._busy_time_integral = 0.0
        self._last_change = clock.now

    # ------------------------------------------------------------------
    # slot updates (called by the worker pool)
    # ------------------------------------------------------------------
    def mark_busy(self, slot: int) -> None:
        """Mark worker ``slot`` busy."""
        self._set_state(slot, _BUSY)

    def mark_idle(self, slot: int) -> None:
        """Mark worker ``slot`` idle."""
        self._set_state(slot, _IDLE)

    def _set_state(self, slot: int, state: int) -> None:
        slots = self._slots
        if not 0 <= slot < len(slots):
            raise ServerError(
                f"scoreboard slot {slot!r} out of range (0..{len(slots) - 1})"
            )
        if slots[slot] == state:
            return
        self._accumulate()
        slots[slot] = state
        if state == _BUSY:
            self._busy_count += 1
            if self._busy_count > self._peak_busy:
                self._peak_busy = self._busy_count
        else:
            self._busy_count -= 1

    def _accumulate(self) -> None:
        now = self._clock.now
        elapsed = now - self._last_change
        if elapsed > 0:
            self._busy_time_integral += elapsed * self._busy_count
        self._last_change = now

    # ------------------------------------------------------------------
    # reads (what the application agent exposes to the virtual router)
    # ------------------------------------------------------------------
    @property
    def num_slots(self) -> int:
        """Total number of worker slots."""
        return len(self._slots)

    @property
    def busy_count(self) -> int:
        """Number of busy worker slots right now."""
        return self._busy_count

    @property
    def idle_count(self) -> int:
        """Number of idle worker slots right now."""
        return len(self._slots) - self._busy_count

    @property
    def peak_busy(self) -> int:
        """Highest number of simultaneously busy workers observed."""
        return self._peak_busy

    def state_of(self, slot: int) -> WorkerState:
        """State of an individual slot (as the public enum)."""
        if not 0 <= slot < len(self._slots):
            raise ServerError(
                f"scoreboard slot {slot!r} out of range (0..{len(self._slots) - 1})"
            )
        return WorkerState.BUSY if self._slots[slot] else WorkerState.IDLE

    def snapshot(self) -> Dict[str, int]:
        """Flat numeric counters (the uniform telemetry-sampler API).

        The same ``name -> number`` shape as ``LinkStats.snapshot`` and
        ``LoadBalancerStats.snapshot``; the telemetry probe reads the
        fleet's busy fraction from these entries every sampling tick.
        """
        return {
            "slots": self.num_slots,
            "busy": self.busy_count,
            "idle": self.idle_count,
            "peak_busy": self.peak_busy,
        }

    def mean_busy(self, since: float = 0.0) -> float:
        """Time-averaged number of busy workers since ``since``."""
        self._accumulate()
        horizon = self._clock.now - since
        if horizon <= 0:
            return 0.0
        return self._busy_time_integral / horizon

    def __repr__(self) -> str:
        return (
            f"Scoreboard(slots={self.num_slots}, busy={self.busy_count}, "
            f"peak={self.peak_busy})"
        )
