"""Application-server substrate (Apache + VPP model).

This package models one application server of the paper's testbed: a
2-core VM whose CPU is time-shared among Apache ``mpm_prefork`` worker
processes, with a bounded TCP listen backlog (RST on overflow), a
scoreboard exposing worker states through shared memory, and a virtual
router hosting the Service Hunting SR behaviour in front of the
application instance.
"""

from repro.server.backlog import ListenBacklog
from repro.server.cpu import CPUModel, FIFOCPU, ProcessorSharingCPU, make_cpu
from repro.server.http_server import (
    HTTPServerInstance,
    ServerAppStats,
    ServerConnection,
    ServerTransport,
)
from repro.server.scoreboard import Scoreboard, WorkerState
from repro.server.virtual_router import ServerNode
from repro.server.worker_pool import WorkerPool

__all__ = [
    "ListenBacklog",
    "CPUModel",
    "ProcessorSharingCPU",
    "FIFOCPU",
    "make_cpu",
    "Scoreboard",
    "WorkerState",
    "WorkerPool",
    "HTTPServerInstance",
    "ServerConnection",
    "ServerAppStats",
    "ServerTransport",
    "ServerNode",
]
