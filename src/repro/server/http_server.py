"""Apache-like HTTP application instance.

This is the application-server substrate of the reproduction: a model of
one Apache httpd instance running the paper's CPU-bound workloads inside
a 2-core VM, configured like the testbed (``mpm_prefork`` with 32
workers, TCP backlog of 128, ``tcp_abort_on_overflow`` enabled).

Responsibilities:

* admit incoming connections through the listen backlog (RST when full),
* assign accepted connections to worker processes in FIFO order,
* charge each request's CPU demand to the shared CPU model (processor
  sharing over the VM's cores),
* reply once the request has received its full CPU demand,
* expose the scoreboard so the application agent (and through it the
  Service Hunting acceptance policy) can read the busy-thread count.

The instance never touches packets: the server's virtual router
(:class:`repro.server.virtual_router.ServerNode`) translates between
packets and the calls below through the :class:`ServerTransport`
protocol, mirroring the separation between Apache and VPP on the
testbed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Protocol

from repro.errors import ServerError
from repro.net.packet import FlowKey
from repro.server.backlog import ListenBacklog
from repro.server.cpu import CPUModel
from repro.server.scoreboard import Scoreboard
from repro.server.worker_pool import WorkerPool
from repro.sim.engine import Simulator

#: Looks up the CPU demand (seconds) of a request by its request id.
DemandLookup = Callable[[int], float]

_connection_ids = itertools.count(1)


class ServerTransport(Protocol):
    """What the application instance needs from its virtual router."""

    def send_syn_ack(self, connection: "ServerConnection") -> None:
        """Send the connection-acceptance packet (SYN-ACK) to the client."""

    def send_reset(self, connection: "ServerConnection") -> None:
        """Send a TCP RST to the client (backlog overflow)."""

    def send_response(self, connection: "ServerConnection", payload_size: int) -> None:
        """Send the HTTP response to the client."""


@dataclass(slots=True)
class ServerConnection:
    """Server-side state of one client connection (slotted: one per
    admitted connection, allocated on the packet hot path)."""

    connection_id: int
    flow_key: FlowKey
    request_id: Optional[int]
    arrived_at: float
    worker_slot: Optional[int] = None
    accepted_at: Optional[float] = None
    request_received: bool = False
    service_started_at: Optional[float] = None
    completed_at: Optional[float] = None
    demand: Optional[float] = None

    @property
    def has_worker(self) -> bool:
        """Whether a worker process has accepted this connection."""
        return self.worker_slot is not None


@dataclass
class ServerAppStats:
    """Aggregate counters for one application instance."""

    connections_received: int = 0
    connections_reset: int = 0
    #: Connections fast-RST'd by load shedding: the backlog depth was at
    #: or above ``shed_watermark`` when the SYN arrived.  Counted
    #: separately from ``connections_reset`` (backlog overflow) because
    #: shedding is a *policy* drop taken while capacity still remains.
    connections_shed: int = 0
    #: Accepted connections reset because the request payload never
    #: arrived within ``request_timeout`` (client gone mid-upload).
    connections_timed_out: int = 0
    requests_served: int = 0
    total_service_demand: float = 0.0
    total_sojourn_time: float = 0.0
    peak_concurrent_connections: int = 0

    def snapshot(self) -> Dict[str, float]:
        """Flat numeric counters (the uniform telemetry-sampler API)."""
        return {
            "connections_received": self.connections_received,
            "connections_reset": self.connections_reset,
            "connections_shed": self.connections_shed,
            "connections_timed_out": self.connections_timed_out,
            "requests_served": self.requests_served,
            "total_service_demand": self.total_service_demand,
            "total_sojourn_time": self.total_sojourn_time,
            "peak_concurrent_connections": self.peak_concurrent_connections,
        }


class HTTPServerInstance:
    """One simulated Apache httpd instance.

    Parameters
    ----------
    simulator:
        The shared simulation engine.
    name:
        Instance name, used in diagnostics.
    cpu:
        CPU model the VM's cores (shared by every worker of this instance).
    num_workers:
        Size of the ``mpm_prefork`` worker pool (paper: 32).
    backlog_capacity:
        TCP listen backlog (paper: 128).
    demand_lookup:
        Callable mapping a request id to its CPU demand in seconds; this
        is how the workload's per-request cost reaches the server.
    response_payload_size:
        Size in bytes of the response payload (only used for byte
        accounting; links are unconstrained by default).
    request_timeout:
        Apache's ``RequestReadTimeout``: a worker that accepted a
        connection but has not received the request payload after this
        many seconds resets the connection and frees itself.  ``None``
        (the default) disables the timeout; long-lived-flow scenarios
        need it so that clients that abandoned a broken flow do not pin
        workers forever.
    shed_watermark:
        Load-shedding high-water mark on the listen backlog: a SYN
        arriving while ``backlog.depth >= shed_watermark`` is fast-RST'd
        *before* admission and counted as ``connections_shed``.  A
        client with retries gets an immediate, cheap signal to go try
        another instance instead of queueing behind a saturated one.
        ``None`` (the default) disables shedding.
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        cpu: CPUModel,
        num_workers: int = 32,
        backlog_capacity: int = 128,
        demand_lookup: Optional[DemandLookup] = None,
        response_payload_size: int = 8_000,
        abort_on_overflow: bool = True,
        request_timeout: Optional[float] = None,
        shed_watermark: Optional[int] = None,
    ) -> None:
        if num_workers <= 0:
            raise ServerError(f"num_workers must be positive, got {num_workers!r}")
        if request_timeout is not None and request_timeout <= 0:
            raise ServerError(
                f"request_timeout must be positive, got {request_timeout!r}"
            )
        if shed_watermark is not None and shed_watermark <= 0:
            raise ServerError(
                f"shed_watermark must be positive, got {shed_watermark!r}"
            )
        self.simulator = simulator
        self.name = name
        self.cpu = cpu
        self.scoreboard = Scoreboard(simulator.clock, num_workers)
        self.workers = WorkerPool(self.scoreboard)
        self.backlog = ListenBacklog(backlog_capacity, abort_on_overflow)
        self.demand_lookup = demand_lookup
        self.response_payload_size = response_payload_size
        self.request_timeout = request_timeout
        self.shed_watermark = shed_watermark
        self.transport: Optional[ServerTransport] = None
        self.stats = ServerAppStats()
        self._connections: Dict[int, ServerConnection] = {}
        self._by_flow: Dict[FlowKey, int] = {}
        #: Shared label for request-timeout events (formatted once).
        self._timeout_label = f"{name}-req-timeout"

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind_transport(self, transport: ServerTransport) -> None:
        """Attach the virtual router that sends packets on our behalf."""
        self.transport = transport

    def _require_transport(self) -> ServerTransport:
        if self.transport is None:
            raise ServerError(
                f"server {self.name!r} has no transport bound; "
                "attach it to a ServerNode first"
            )
        return self.transport

    # ------------------------------------------------------------------
    # connection lifecycle (called by the virtual router)
    # ------------------------------------------------------------------
    def handle_connection_request(
        self, flow_key: FlowKey, request_id: Optional[int]
    ) -> ServerConnection:
        """Process a delivered SYN: admit to the backlog or reset.

        Returns the (possibly reset) connection record so the caller and
        the tests can observe the outcome.
        """
        transport = self._require_transport()
        self.stats.connections_received += 1
        connection = ServerConnection(
            connection_id=next(_connection_ids),
            flow_key=flow_key,
            request_id=request_id,
            arrived_at=self.simulator.now,
        )
        shed = self.shed_watermark
        if shed is not None and self.backlog.depth >= shed:
            # Load shedding: refuse while capacity remains so the reset
            # reaches the client before the backlog actually overflows.
            self.stats.connections_shed += 1
            transport.send_reset(connection)
            return connection
        if not self.backlog.try_admit(connection.connection_id):
            self.stats.connections_reset += 1
            transport.send_reset(connection)
            return connection

        self._connections[connection.connection_id] = connection
        self._by_flow[flow_key] = connection.connection_id
        self.stats.peak_concurrent_connections = max(
            self.stats.peak_concurrent_connections, len(self._connections)
        )
        transport.send_syn_ack(connection)
        self._accept_ready_connections()
        return connection

    def handle_request_data(self, flow_key: FlowKey, request_id: Optional[int]) -> bool:
        """Process the HTTP request payload for an established connection.

        Returns ``False`` when no matching connection exists (e.g. the
        connection was reset); the packet is then ignored, as a real
        kernel would answer it with a RST that the client already
        received.
        """
        connection_id = self._by_flow.get(flow_key)
        if connection_id is None:
            return False
        connection = self._connections[connection_id]
        connection.request_received = True
        if request_id is not None:
            connection.request_id = request_id
        if connection.has_worker:
            self._start_service(connection)
        return True

    # ------------------------------------------------------------------
    # worker scheduling
    # ------------------------------------------------------------------
    def _accept_ready_connections(self) -> None:
        """Have idle workers accept connections from the backlog (FIFO)."""
        while self.workers.has_idle_worker:
            connection_id = self.backlog.pop_next()
            if connection_id is None:
                break
            connection = self._connections[connection_id]
            slot = self.workers.acquire()
            connection.worker_slot = slot
            connection.accepted_at = self.simulator.now
            if connection.request_received:
                self._start_service(connection)
            elif self.request_timeout is not None:
                self.simulator.schedule_in(
                    self.request_timeout,
                    lambda cid=connection_id: self._check_request_timeout(cid),
                    label=self._timeout_label,
                )

    def _check_request_timeout(self, connection_id: int) -> None:
        """Reset a worker-held connection whose request never arrived."""
        connection = self._connections.get(connection_id)
        if connection is None or connection.request_received:
            return
        del self._connections[connection_id]
        self._by_flow.pop(connection.flow_key, None)
        self.stats.connections_timed_out += 1
        self._require_transport().send_reset(connection)
        if connection.worker_slot is not None:
            self.workers.release(connection.worker_slot)
        self._accept_ready_connections()

    def _start_service(self, connection: ServerConnection) -> None:
        if connection.service_started_at is not None:
            return
        connection.service_started_at = self.simulator.now
        connection.demand = self._demand_for(connection.request_id)
        self.cpu.add_job(
            connection.connection_id,
            connection.demand,
            self._on_service_complete,
        )

    def _demand_for(self, request_id: Optional[int]) -> float:
        if self.demand_lookup is None or request_id is None:
            raise ServerError(
                f"server {self.name!r} received a request without a demand source "
                f"(request_id={request_id!r})"
            )
        demand = self.demand_lookup(request_id)
        if demand <= 0:
            raise ServerError(
                f"request {request_id!r} has non-positive CPU demand {demand!r}"
            )
        return demand

    def _on_service_complete(self, connection_id: int) -> None:
        connection = self._connections.pop(connection_id, None)
        if connection is None:
            raise ServerError(
                f"CPU completed unknown connection {connection_id!r} on {self.name!r}"
            )
        self._by_flow.pop(connection.flow_key, None)
        connection.completed_at = self.simulator.now
        self.stats.requests_served += 1
        self.stats.total_service_demand += connection.demand or 0.0
        self.stats.total_sojourn_time += connection.completed_at - connection.arrived_at
        transport = self._require_transport()
        transport.send_response(connection, self.response_payload_size)
        if connection.worker_slot is not None:
            self.workers.release(connection.worker_slot)
        self._accept_ready_connections()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def busy_threads(self) -> int:
        """Busy worker count (what the acceptance policies look at)."""
        return self.workers.busy_workers

    @property
    def open_connections(self) -> int:
        """Connections currently tracked (in backlog or being served)."""
        return len(self._connections)

    def connection_for_flow(self, flow_key: FlowKey) -> Optional[ServerConnection]:
        """The live connection for a flow, if any."""
        connection_id = self._by_flow.get(flow_key)
        if connection_id is None:
            return None
        return self._connections.get(connection_id)

    def __repr__(self) -> str:
        return (
            f"HTTPServerInstance(name={self.name!r}, busy={self.busy_threads}, "
            f"backlog={self.backlog.depth}, served={self.stats.requests_served})"
        )
