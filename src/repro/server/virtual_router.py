"""Server-side virtual router (the VPP role on each application server).

On the paper's testbed every application server runs VPP, which
"dispatches packets between physical NICs and application-bound virtual
interfaces" and hosts both the Service Hunting SR behaviour and the
Apache server agent.  :class:`ServerNode` plays that role here:

* packets whose active segment is the server's address go through the
  :class:`~repro.core.service_hunting.ServiceHuntingProcessor`, which
  consults the local connection-acceptance policy through the
  application agent and either delivers the packet to the local
  application instance or forwards it to the next candidate;
* packets delivered to the application are translated into calls on the
  :class:`~repro.server.http_server.HTTPServerInstance`;
* the application's outbound messages (SYN-ACK with the steering SR
  header, RST on backlog overflow, HTTP responses) are turned back into
  packets and sent into the fabric.
"""

from __future__ import annotations

from typing import Set

from repro.core.agent import ApplicationAgent
from repro.core.policies import ConnectionAcceptancePolicy
from repro.core.service_hunting import (
    HuntingDecision,
    ServiceHuntingProcessor,
    build_steering_reply_path,
)
from repro.errors import ServerError
from repro.net.addressing import IPv6Address
from repro.net.packet import Packet, TCPFlag, TCPSegment, make_reset
from repro.net.router import NetworkNode
from repro.net.srh import SegmentRoutingHeader
from repro.server.http_server import HTTPServerInstance, ServerConnection
from repro.sim.engine import Simulator


class ServerNode(NetworkNode):
    """One application server: virtual router + local application instance.

    Parameters
    ----------
    simulator:
        Shared simulation engine.
    name:
        Node name (diagnostics).
    address:
        The server's physical IPv6 address, used as its SR segment.
    app:
        The local application instance (Apache model).
    policy:
        The connection-acceptance policy for this server.  Must be a
        dedicated instance; policy state is strictly local.
    load_balancer_address:
        Address of the load balancer the steering SYN-ACK is routed
        through.
    cpu_cores:
        Core count reported to the application agent (coarse metrics).
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        address: IPv6Address,
        app: HTTPServerInstance,
        policy: ConnectionAcceptancePolicy,
        load_balancer_address: IPv6Address,
        cpu_cores: int = 2,
    ) -> None:
        super().__init__(simulator, name)
        self.add_address(address)
        self.app = app
        self.policy = policy
        self.load_balancer_address = load_balancer_address
        self.agent = ApplicationAgent(app.scoreboard, cpu_cores)
        self.hunting = ServiceHuntingProcessor(policy, self.agent)
        self._bound_vips: Set[IPv6Address] = set()
        #: RSTs sent for data packets that matched no local connection
        #: (e.g. a recovery hunt that ended on the wrong server).
        self.stray_data_resets = 0
        app.bind_transport(self)

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def bind_vip(self, vip: IPv6Address) -> None:
        """Bind the local application instance to a virtual IP address."""
        self._bound_vips.add(vip)

    # ------------------------------------------------------------------
    # graceful drain (driven by the control plane)
    # ------------------------------------------------------------------
    def start_draining(self) -> None:
        """Stop accepting new flows; in-flight flows keep being served.

        The refusal happens at the Service Hunting layer: optional offers
        are forwarded to the next candidate without consulting the
        acceptance policy.  Mid-flow steering, recovery hunts for flows
        this server already holds, and response delivery are unaffected,
        so draining never resets an established connection.
        """
        self.hunting.draining = True

    def stop_draining(self) -> None:
        """Resume accepting new flows (a cancelled scale-down)."""
        self.hunting.draining = False

    @property
    def draining(self) -> bool:
        """Whether the server is refusing new flows for a graceful drain."""
        return self.hunting.draining

    @property
    def quiescent(self) -> bool:
        """Whether no connection is open or queued on the local instance.

        The drain's completion condition: once a draining server is
        quiescent it can be detached without breaking any flow.
        """
        return self.app.open_connections == 0 and self.app.busy_threads == 0

    @property
    def bound_vips(self) -> Set[IPv6Address]:
        """VIPs served by the local application instance (copy)."""
        return set(self._bound_vips)

    # ------------------------------------------------------------------
    # packet processing
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet) -> None:
        if packet.srh is not None and not packet.srh.exhausted and self.owns(packet.dst):
            if self._is_connection_request(packet):
                # Service Hunting proper: the accept-or-forward choice only
                # applies to the first packet of a flow (the SYN).
                decision = self.hunting.process(packet)
                if decision is HuntingDecision.ACCEPT:
                    self._deliver_to_application(packet)
                elif decision is HuntingDecision.FORWARD:
                    self.send(packet)
                else:  # pragma: no cover - defensive, hunting never returns it here
                    raise ServerError(
                        f"unexpected hunting decision {decision!r} on {self.name!r}"
                    )
            else:
                self._handle_mid_flow_segment(packet)
            return

        if packet.dst in self._bound_vips or self.owns(packet.dst):
            self._deliver_to_application(packet)
            return

        # Not for us: in a bridged LAN this should not happen, count and drop.
        raise ServerError(
            f"server {self.name!r} received a packet it does not own: "
            f"{packet.describe()}"
        )

    @staticmethod
    def _is_connection_request(packet: Packet) -> bool:
        """Whether ``packet`` is the first packet of a flow (a plain SYN)."""
        return packet.tcp.has(TCPFlag.SYN) and not packet.tcp.has(TCPFlag.ACK)

    def _handle_mid_flow_segment(self, packet: Packet) -> None:
        """Process a mid-flow packet whose active segment is this server.

        Ordinary steering uses a two-segment ``[server, VIP]`` header, so
        the packet is consumed and delivered locally.  A longer remaining
        list is a *recovery hunt*: a load balancer that lost its steering
        state re-sent the packet through the flow's (stable) candidate
        chain, and the connection lives on exactly one of the candidates
        — deliver if it is here, else pass the packet down the chain.
        The final candidate consumes the packet unconditionally, like the
        forced accept of connection-request hunting.
        """
        if (
            packet.srh.segments_left <= 1
            or self.app.connection_for_flow(packet.flow_key()) is not None
        ):
            packet.set_segments_left(0)
            self._deliver_to_application(packet)
        else:
            packet.advance_srh()
            self.send(packet)

    def _deliver_to_application(self, packet: Packet) -> None:
        """Translate a delivered packet into application-instance calls."""
        flow_key = packet.flow_key()
        tcp = packet.tcp
        if tcp.has(TCPFlag.RST):
            # Client aborted; nothing to do in the simplified model.
            return
        if tcp.has(TCPFlag.SYN) and not tcp.has(TCPFlag.ACK):
            self.app.handle_connection_request(flow_key, tcp.request_id)
            return
        if tcp.payload_size > 0 or tcp.has(TCPFlag.PSH):
            if not self.app.handle_request_data(flow_key, tcp.request_id):
                # No such connection here: answer with a RST, as a real
                # kernel would.  Clients that already saw a RST for this
                # query ignore the duplicate; clients mid-recovery learn
                # that their flow is broken instead of waiting forever.
                self.stray_data_resets += 1
                self.send(
                    make_reset(
                        flow_key,
                        request_id=tcp.request_id,
                        created_at=self.simulator.now,
                        pool=self.packet_pool,
                    )
                )
            return
        # Bare ACKs (handshake completion) carry no new information here.

    # ------------------------------------------------------------------
    # ServerTransport protocol (called by the application instance)
    # ------------------------------------------------------------------
    def send_syn_ack(self, connection: ServerConnection) -> None:
        """Send the connection-acceptance packet through the load balancer."""
        flow_key = connection.flow_key
        path = build_steering_reply_path(
            server_address=self.primary_address,
            load_balancer_address=self.load_balancer_address,
            client_address=flow_key.src_address,
        )
        srh = SegmentRoutingHeader.from_traversal(path)
        # The server's own segment is already "traversed" when the packet
        # leaves: advance once so the load balancer is the active segment.
        srh.advance()
        pool = self.packet_pool
        if pool is None:
            packet = Packet(
                src=flow_key.dst_address,  # the VIP: clients talk to the service
                dst=srh.active_segment,
                tcp=TCPSegment(
                    src_port=flow_key.dst_port,
                    dst_port=flow_key.src_port,
                    flags=TCPFlag.SYN | TCPFlag.ACK,
                    request_id=connection.request_id,
                ),
                srh=srh,
                created_at=self.simulator.now,
            )
        else:
            packet = pool.acquire(
                src=flow_key.dst_address,
                dst=srh.active_segment,
                tcp=pool.acquire_segment(
                    src_port=flow_key.dst_port,
                    dst_port=flow_key.src_port,
                    flags=TCPFlag.SYN | TCPFlag.ACK,
                    request_id=connection.request_id,
                ),
                srh=srh,
                created_at=self.simulator.now,
            )
        self.send(packet)

    def send_reset(self, connection: ServerConnection) -> None:
        """Send a RST directly to the client (backlog overflow, timeout)."""
        self.send(
            make_reset(
                connection.flow_key,
                request_id=connection.request_id,
                created_at=self.simulator.now,
                pool=self.packet_pool,
            )
        )

    def send_response(self, connection: ServerConnection, payload_size: int) -> None:
        """Send the HTTP response directly to the client (direct return)."""
        flow_key = connection.flow_key
        pool = self.packet_pool
        if pool is None:
            packet = Packet(
                src=flow_key.dst_address,
                dst=flow_key.src_address,
                tcp=TCPSegment(
                    src_port=flow_key.dst_port,
                    dst_port=flow_key.src_port,
                    flags=TCPFlag.PSH | TCPFlag.ACK,
                    payload_size=payload_size,
                    request_id=connection.request_id,
                ),
                created_at=self.simulator.now,
            )
        else:
            packet = pool.acquire(
                src=flow_key.dst_address,
                dst=flow_key.src_address,
                tcp=pool.acquire_segment(
                    src_port=flow_key.dst_port,
                    dst_port=flow_key.src_port,
                    flags=TCPFlag.PSH | TCPFlag.ACK,
                    payload_size=payload_size,
                    request_id=connection.request_id,
                ),
                created_at=self.simulator.now,
            )
        self.send(packet)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def busy_threads(self) -> int:
        """Busy worker count of the local application instance."""
        return self.app.busy_threads

    def __repr__(self) -> str:
        return (
            f"ServerNode(name={self.name!r}, policy={self.policy.name!r}, "
            f"busy={self.busy_threads})"
        )
