"""Worker-process pool (Apache ``mpm_prefork`` model).

The paper configures each Apache instance with a pool of 32 worker
processes: a worker handles exactly one connection at a time, from
``accept()`` until the connection closes, and a connection that cannot
get a worker waits in the listen backlog.

The :class:`WorkerPool` here reproduces exactly that bookkeeping: a fixed
number of slots, acquire/release semantics, and scoreboard updates so the
application agent can read the busy-thread count in real time.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import WorkerPoolError
from repro.server.scoreboard import Scoreboard


class WorkerPool:
    """Fixed pool of worker slots bound to a scoreboard.

    Parameters
    ----------
    scoreboard:
        The scoreboard to mirror slot states into; the number of workers
        equals the scoreboard's number of slots.
    """

    def __init__(self, scoreboard: Scoreboard) -> None:
        self._scoreboard = scoreboard
        self._free_slots: List[int] = list(range(scoreboard.num_slots))
        # Keep free slots sorted so acquisition order is deterministic.
        self._free_slots.reverse()
        self._busy_slots: set = set()
        self.total_acquisitions = 0

    @property
    def num_workers(self) -> int:
        """Total number of worker slots."""
        return self._scoreboard.num_slots

    @property
    def busy_workers(self) -> int:
        """Number of workers currently serving a connection."""
        return len(self._busy_slots)

    @property
    def idle_workers(self) -> int:
        """Number of workers available to accept a connection."""
        return self.num_workers - self.busy_workers

    @property
    def has_idle_worker(self) -> bool:
        """Whether at least one worker is available."""
        return bool(self._free_slots)

    def acquire(self) -> Optional[int]:
        """Reserve a worker; returns its slot index, or ``None`` if all busy."""
        if not self._free_slots:
            return None
        slot = self._free_slots.pop()
        self._busy_slots.add(slot)
        self._scoreboard.mark_busy(slot)
        self.total_acquisitions += 1
        return slot

    def release(self, slot: int) -> None:
        """Return a worker to the pool after its connection closed."""
        if slot not in self._busy_slots:
            raise WorkerPoolError(
                f"cannot release worker slot {slot!r}: it is not busy"
            )
        self._busy_slots.remove(slot)
        self._free_slots.append(slot)
        self._scoreboard.mark_idle(slot)

    def is_busy(self, slot: int) -> bool:
        """Whether a given slot is currently serving a connection."""
        return slot in self._busy_slots

    def __repr__(self) -> str:
        return (
            f"WorkerPool(workers={self.num_workers}, busy={self.busy_workers}, "
            f"idle={self.idle_workers})"
        )
