"""CPU models for the application servers.

The paper's application servers are 2-core VMs running a CPU-bound PHP
workload under Apache's ``mpm_prefork``: each request occupies a worker
process and needs a given amount of CPU time, and the operating system
time-slices the runnable workers across the two cores.  The dominant
effect on response times is therefore *processor sharing*: when ``k``
workers are runnable on ``m`` cores, each progresses at rate
``min(1, m/k)``.

Two CPU models are provided:

* :class:`ProcessorSharingCPU` — the default, faithful to the testbed
  (time-sliced cores).
* :class:`FIFOCPU` — an ablation model where each core runs one job to
  completion (run-to-completion scheduling).

Both expose the same interface: ``add_job(job_id, demand, on_complete)``
plus cancellation, and both keep a busy-core-time integral so
experiments can report CPU utilization.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

from repro.errors import ServerError
from repro.sim.engine import EventHandle, Simulator

#: Completion callback: receives the job id.
JobCompletionCallback = Callable[[int], None]

#: Numerical tolerance when deciding that a job's remaining demand is zero.
_REMAINING_EPSILON = 1e-12


@dataclass(slots=True)
class _Job:
    """Internal per-job state."""

    demand: float
    remaining: float
    on_complete: JobCompletionCallback
    submitted_at: float


class CPUModel:
    """Common bookkeeping shared by the CPU scheduling models.

    ``speed`` is a multiplier on execution rate: a job with demand ``d``
    seconds finishes in ``d / speed`` seconds of dedicated core time.
    The default of 1.0 is the paper's homogeneous fleet; the
    heterogeneous-fleet scenario mixes speed tiers.
    """

    def __init__(
        self,
        simulator: Simulator,
        num_cores: int,
        name: str = "cpu",
        speed: float = 1.0,
    ) -> None:
        if num_cores <= 0:
            raise ServerError(f"number of cores must be positive, got {num_cores!r}")
        if speed <= 0:
            raise ServerError(f"CPU speed must be positive, got {speed!r}")
        self.simulator = simulator
        self.num_cores = num_cores
        self.speed = speed
        self.name = name
        #: Event label shared by every completion this CPU schedules
        #: (completions are rescheduled on every job arrival, so the
        #: label is formatted once, not once per reschedule).
        self._completion_label = f"{name}-completion"
        self.jobs_completed = 0
        self.busy_core_seconds = 0.0
        self._last_accounting = simulator.now

    # -- utilization accounting ----------------------------------------
    def _account_busy_time(self, active_jobs: int) -> None:
        now = self.simulator.now
        elapsed = now - self._last_accounting
        if elapsed > 0:
            self.busy_core_seconds += elapsed * min(self.num_cores, active_jobs)
        self._last_accounting = now

    def utilization(self, since: float = 0.0) -> float:
        """Mean fraction of core capacity used since ``since``."""
        horizon = self.simulator.now - since
        if horizon <= 0:
            return 0.0
        return self.busy_core_seconds / (horizon * self.num_cores)

    # -- interface ------------------------------------------------------
    @property
    def active_jobs(self) -> int:
        """Number of jobs currently holding CPU demand (queued or running)."""
        raise NotImplementedError

    def add_job(
        self, job_id: int, demand: float, on_complete: JobCompletionCallback
    ) -> None:
        """Submit a job requiring ``demand`` seconds of CPU time."""
        raise NotImplementedError

    def cancel_job(self, job_id: int) -> bool:
        """Remove a job before completion; returns whether it existed."""
        raise NotImplementedError

    def set_speed(self, speed: float) -> None:
        """Change the execution-rate multiplier mid-run.

        The server lifecycle uses this for warm-up: a freshly provisioned
        server executes at a reduced speed until its caches/JIT are warm,
        then is restored to nominal.  Subclasses that keep scheduled
        completion events must re-plan them for the new rate.
        """
        raise NotImplementedError


class ProcessorSharingCPU(CPUModel):
    """Egalitarian processor sharing over ``num_cores`` cores.

    All active jobs progress simultaneously at rate
    ``min(1, num_cores / active_jobs)``.  The implementation advances the
    remaining demand of every job lazily whenever the job set changes and
    keeps a single scheduled event for the earliest completion.
    """

    def __init__(
        self,
        simulator: Simulator,
        num_cores: int,
        name: str = "cpu",
        speed: float = 1.0,
    ) -> None:
        super().__init__(simulator, num_cores, name, speed)
        self._jobs: Dict[int, _Job] = {}
        self._last_progress = simulator.now
        self._completion_event: Optional[EventHandle] = None

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def _per_job_rate(self) -> float:
        if not self._jobs:
            return 0.0
        return self.speed * min(1.0, self.num_cores / len(self._jobs))

    def _advance_progress(self) -> None:
        """Charge elapsed CPU progress to every active job."""
        now = self.simulator.now
        self._account_busy_time(len(self._jobs))
        elapsed = now - self._last_progress
        if elapsed > 0 and self._jobs:
            progress = elapsed * self._per_job_rate()
            for job in self._jobs.values():
                job.remaining -= progress
        self._last_progress = now

    def _reschedule_completion(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self._jobs:
            return
        min_remaining = min(job.remaining for job in self._jobs.values())
        rate = self._per_job_rate()
        delay = max(0.0, min_remaining) / rate
        self._completion_event = self.simulator.schedule_in(
            delay, self._fire_completions, label=self._completion_label
        )

    def _fire_completions(self) -> None:
        self._completion_event = None
        self._advance_progress()
        finished = [
            job_id
            for job_id, job in self._jobs.items()
            if job.remaining <= _REMAINING_EPSILON
        ]
        completed_jobs = [(job_id, self._jobs.pop(job_id)) for job_id in finished]
        self._reschedule_completion()
        for job_id, job in completed_jobs:
            self.jobs_completed += 1
            job.on_complete(job_id)

    def add_job(
        self, job_id: int, demand: float, on_complete: JobCompletionCallback
    ) -> None:
        if demand <= 0:
            raise ServerError(f"job demand must be positive, got {demand!r}")
        if job_id in self._jobs:
            raise ServerError(f"job {job_id!r} is already running on {self.name!r}")
        self._advance_progress()
        self._jobs[job_id] = _Job(
            demand=demand,
            remaining=demand,
            on_complete=on_complete,
            submitted_at=self.simulator.now,
        )
        self._reschedule_completion()

    def cancel_job(self, job_id: int) -> bool:
        if job_id not in self._jobs:
            return False
        self._advance_progress()
        del self._jobs[job_id]
        self._reschedule_completion()
        return True

    def set_speed(self, speed: float) -> None:
        if speed <= 0:
            raise ServerError(f"CPU speed must be positive, got {speed!r}")
        if speed == self.speed:
            return
        # Charge progress at the old rate up to now, then re-plan the
        # earliest completion at the new rate.
        self._advance_progress()
        self.speed = speed
        self._reschedule_completion()


class FIFOCPU(CPUModel):
    """Run-to-completion scheduling: each core runs one job at a time.

    Jobs queue in FIFO order behind the cores.  Used as an ablation of
    the CPU scheduling assumption.
    """

    def __init__(
        self,
        simulator: Simulator,
        num_cores: int,
        name: str = "cpu",
        speed: float = 1.0,
    ) -> None:
        super().__init__(simulator, num_cores, name, speed)
        self._running: Dict[int, _Job] = {}
        self._running_events: Dict[int, EventHandle] = {}
        self._queue: Deque[int] = deque()
        self._queued_jobs: Dict[int, _Job] = {}

    @property
    def active_jobs(self) -> int:
        return len(self._running) + len(self._queue)

    def add_job(
        self, job_id: int, demand: float, on_complete: JobCompletionCallback
    ) -> None:
        if demand <= 0:
            raise ServerError(f"job demand must be positive, got {demand!r}")
        if job_id in self._running or job_id in self._queued_jobs:
            raise ServerError(f"job {job_id!r} is already running on {self.name!r}")
        self._account_busy_time(len(self._running))
        job = _Job(
            demand=demand,
            remaining=demand,
            on_complete=on_complete,
            submitted_at=self.simulator.now,
        )
        if len(self._running) < self.num_cores:
            self._start(job_id, job)
        else:
            self._queue.append(job_id)
            self._queued_jobs[job_id] = job

    def _start(self, job_id: int, job: _Job) -> None:
        self._running[job_id] = job
        handle = self.simulator.schedule_in(
            job.remaining / self.speed,
            lambda: self._complete(job_id),
            label=self._completion_label,
        )
        self._running_events[job_id] = handle

    def _complete(self, job_id: int) -> None:
        self._account_busy_time(len(self._running))
        job = self._running.pop(job_id)
        self._running_events.pop(job_id, None)
        self.jobs_completed += 1
        self._dequeue_next()
        job.on_complete(job_id)

    def _dequeue_next(self) -> None:
        while self._queue and len(self._running) < self.num_cores:
            next_id = self._queue.popleft()
            next_job = self._queued_jobs.pop(next_id)
            self._start(next_id, next_job)

    def set_speed(self, speed: float) -> None:
        if speed <= 0:
            raise ServerError(f"CPU speed must be positive, got {speed!r}")
        if speed == self.speed:
            return
        old_speed = self.speed
        self.speed = speed
        now = self.simulator.now
        # Re-plan every running job's completion for the new rate: the
        # remaining wall time at the old rate encodes the remaining
        # demand exactly (run-to-completion, no sharing).
        for job_id, handle in list(self._running_events.items()):
            remaining_demand = max(0.0, handle.time - now) * old_speed
            handle.cancel()
            self._running_events[job_id] = self.simulator.schedule_in(
                remaining_demand / speed,
                lambda jid=job_id: self._complete(jid),
                label=self._completion_label,
            )

    def cancel_job(self, job_id: int) -> bool:
        self._account_busy_time(len(self._running))
        if job_id in self._running:
            self._running.pop(job_id)
            handle = self._running_events.pop(job_id, None)
            if handle is not None:
                handle.cancel()
            self._dequeue_next()
            return True
        if job_id in self._queued_jobs:
            self._queued_jobs.pop(job_id)
            self._queue.remove(job_id)
            return True
        return False


def make_cpu(
    simulator: Simulator,
    num_cores: int,
    model: str = "processor-sharing",
    name: str = "cpu",
    speed: float = 1.0,
) -> CPUModel:
    """Factory for CPU models, keyed by a configuration string."""
    if model in ("processor-sharing", "ps"):
        return ProcessorSharingCPU(simulator, num_cores, name, speed)
    if model in ("fifo", "run-to-completion"):
        return FIFOCPU(simulator, num_cores, name, speed)
    raise ServerError(f"unknown CPU model {model!r}")
