"""Time binning of per-request samples.

The Wikipedia-replay figures aggregate per-request response times into
10-minute bins: Figure 6 plots the per-bin query rate and median load
time, and Figure 7 the per-bin deciles 1–9.  :class:`TimeBinner` groups
samples into fixed-width bins and computes those per-bin series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


from repro.errors import ReproError
from repro.metrics.stats import deciles, median_or_nan


@dataclass
class TimeBin:
    """One bin of samples."""

    start: float
    end: float
    values: List[float]

    @property
    def center(self) -> float:
        """Mid-point of the bin (the x coordinate used for plotting)."""
        return (self.start + self.end) / 2.0

    @property
    def count(self) -> int:
        """Number of samples in the bin."""
        return len(self.values)

    @property
    def rate(self) -> float:
        """Samples per second over the bin width."""
        return self.count / (self.end - self.start)

    @property
    def median(self) -> float:
        """Median of the bin's samples (NaN when empty)."""
        return median_or_nan(self.values)

    def deciles(self) -> List[float]:
        """Deciles 1–9 of the bin's samples (NaNs when empty)."""
        if not self.values:
            return [float("nan")] * 9
        return deciles(self.values)


class TimeBinner:
    """Fixed-width time binning of ``(timestamp, value)`` samples.

    Parameters
    ----------
    bin_width:
        Width of each bin in seconds (the paper uses 600 s).
    start:
        Start of the first bin; samples before it are rejected.
    through:
        Default horizon for :meth:`bins` and the derived series: the
        materialised range always covers this timestamp, even when the
        trailing bins are empty.  A ``through=`` argument at a call site
        overrides it.
    """

    def __init__(
        self,
        bin_width: float = 600.0,
        start: float = 0.0,
        through: Optional[float] = None,
    ) -> None:
        if bin_width <= 0:
            raise ReproError(f"bin width must be positive, got {bin_width!r}")
        self.bin_width = bin_width
        self.start = start
        self.through = through
        self._bins: Dict[int, List[float]] = {}

    def add(self, timestamp: float, value: float) -> None:
        """Add one sample."""
        if timestamp < self.start:
            raise ReproError(
                f"sample at {timestamp!r} precedes the binning origin {self.start!r}"
            )
        index = int((timestamp - self.start) // self.bin_width)
        self._bins.setdefault(index, []).append(value)

    def add_many(self, samples: Sequence[Tuple[float, float]]) -> None:
        """Add ``(timestamp, value)`` pairs in bulk."""
        for timestamp, value in samples:
            self.add(timestamp, value)

    def bins(self, through: Optional[float] = None) -> List[TimeBin]:
        """Materialise the bins, including empty ones, in time order.

        ``through`` extends the range to cover that timestamp even if the
        trailing bins are empty (so series from different runs align);
        when omitted, the binner's own :attr:`through` horizon applies.
        """
        if through is None:
            through = self.through
        if not self._bins and through is None:
            return []
        last_index = max(self._bins) if self._bins else 0
        if through is not None:
            last_index = max(
                last_index, int((through - self.start) // self.bin_width)
            )
        result = []
        for index in range(0, last_index + 1):
            bin_start = self.start + index * self.bin_width
            result.append(
                TimeBin(
                    start=bin_start,
                    end=bin_start + self.bin_width,
                    values=self._bins.get(index, []),
                )
            )
        return result

    # ------------------------------------------------------------------
    # derived series (what the figures plot)
    # ------------------------------------------------------------------
    def rate_series(self, through: Optional[float] = None) -> List[Tuple[float, float]]:
        """Per-bin arrival rate: ``(bin center, samples per second)``."""
        return [(bin_.center, bin_.rate) for bin_ in self.bins(through)]

    def median_series(self, through: Optional[float] = None) -> List[Tuple[float, float]]:
        """Per-bin median value: ``(bin center, median)``."""
        return [(bin_.center, bin_.median) for bin_ in self.bins(through)]

    def decile_series(
        self, through: Optional[float] = None
    ) -> List[Tuple[float, List[float]]]:
        """Per-bin deciles 1–9: ``(bin center, [d1..d9])``."""
        return [(bin_.center, bin_.deciles()) for bin_ in self.bins(through)]

    def all_values(self) -> List[float]:
        """Every sample across all bins (for whole-day CDFs)."""
        values: List[float] = []
        for bin_values in self._bins.values():
            values.extend(bin_values)
        return values

    def __len__(self) -> int:
        return len(self._bins)
