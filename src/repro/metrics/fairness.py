"""Jain's fairness index.

Figure 4 of the paper plots, next to the mean instantaneous server load,
the *fairness index* of the per-server loads:

.. math::

    F(x_1, ..., x_n) = \\frac{(\\sum_i x_i)^2}{n \\sum_i x_i^2}

which is 1 when every server carries the same load and tends to ``1/n``
when a single server carries everything.  The index is what shows that
SR4 "better spreads queries between all servers" than RR.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ReproError


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index of ``values``.

    By convention the index of an all-zero sample is 1.0 (an idle
    cluster is perfectly fair); negative loads are rejected.
    """
    if len(values) == 0:
        raise ReproError("cannot compute the fairness index of an empty sample")
    array = np.asarray(values, dtype=float)
    if np.any(array < 0):
        raise ReproError("fairness index requires non-negative values")
    peak = float(np.max(array))
    if peak == 0.0:
        # An idle cluster is perfectly fair.
        return 1.0
    # Normalise by the peak before squaring: the index is scale
    # invariant, and loads near the float minimum would otherwise
    # square into subnormals whose precision loss can push the result
    # outside the mathematical [1/n, 1] bounds.
    array = array / peak
    total = float(np.sum(array))
    squared_sum = float(np.sum(array ** 2))
    return total ** 2 / (len(array) * squared_sum)


def min_max_ratio(values: Sequence[float]) -> float:
    """Ratio of the least to the most loaded server (1.0 = perfectly even).

    A secondary imbalance indicator used in tests and ablations; unlike
    Jain's index it is extremely sensitive to a single idle server.
    """
    if len(values) == 0:
        raise ReproError("cannot compute the min/max ratio of an empty sample")
    array = np.asarray(values, dtype=float)
    if np.any(array < 0):
        raise ReproError("min/max ratio requires non-negative values")
    maximum = float(np.max(array))
    if maximum == 0.0:
        return 1.0
    return float(np.min(array)) / maximum
