"""Capacity accounting for the elastic control plane.

An autoscaled fleet is judged on two axes: whether it met its SLO, and
what it *paid* to do so.  This module provides the cost side:

* :class:`CapacityTracker` — a step-function integral of provisioned
  fleet capacity (speed-weighted cores) over simulated time, yielding
  **capacity-seconds**, the simulation's stand-in for an instance bill;
* :class:`ScalingEvent` — one record per control-plane action
  (scale-up, scale-down), with the monitor signal that triggered it;
* drain-duration bookkeeping — how long graceful drains took from the
  moment a server stopped taking new flows to its final detach.

Everything here is plain scalars and lists, so a tracker's
:class:`CapacityPayload` crosses the ``multiprocessing`` boundary of the
scenario runner as-is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class ScalingEvent:
    """One applied control-plane action."""

    time: float
    #: ``"scale-up"`` or ``"scale-down"``.
    action: str
    #: The (smoothed) monitor signal that triggered the action.
    signal: float
    #: Provisioned server count before and after the action.
    servers_before: int
    servers_after: int


@dataclass
class CapacityPayload:
    """Picklable compact form of a :class:`CapacityTracker`."""

    steps: List[Tuple[float, float]]
    events: List[ScalingEvent]
    drain_durations: List[float]


class CapacityTracker:
    """Integrates provisioned capacity over time (capacity-seconds).

    ``record(time, capacity)`` appends one step of the capacity
    step-function; the capacity in force between two records is the
    earlier record's value.  The server lifecycle records every
    provisioning/detach transition here, so the integral covers the full
    window a server is paid for — provisioning delay and warm-up
    included, exactly like a cloud bill.
    """

    def __init__(self, start_time: float = 0.0, capacity: float = 0.0) -> None:
        if capacity < 0:
            raise ReproError(f"capacity must be non-negative, got {capacity!r}")
        self._steps: List[Tuple[float, float]] = [(start_time, capacity)]
        #: Latest timestamp seen by :meth:`record` — including records
        #: deduplicated away because the capacity was unchanged, so the
        #: time-ordering contract holds across no-op records too.
        self._last_seen = start_time
        self.events: List[ScalingEvent] = []
        self.drain_durations: List[float] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, time: float, capacity: float) -> None:
        """Set the provisioned capacity from ``time`` onwards."""
        last_time, last_capacity = self._steps[-1]
        if time < self._last_seen:
            raise ReproError(
                f"capacity records must be time-ordered "
                f"({time!r} < {self._last_seen!r})"
            )
        self._last_seen = time
        if capacity < 0:
            raise ReproError(f"capacity must be non-negative, got {capacity!r}")
        if capacity == last_capacity:
            return
        if time == last_time:
            # Same-instant correction (e.g. several lifecycle transitions
            # in one control tick): overwrite instead of stacking.
            self._steps[-1] = (time, capacity)
        else:
            self._steps.append((time, capacity))

    def record_event(self, event: ScalingEvent) -> None:
        """Append one applied scaling action."""
        self.events.append(event)

    def record_drain(self, duration: float) -> None:
        """Append one completed graceful drain's duration, in seconds."""
        if duration < 0:
            raise ReproError(f"drain duration must be non-negative, got {duration!r}")
        self.drain_durations.append(duration)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def current_capacity(self) -> float:
        """The capacity in force after the latest record."""
        return self._steps[-1][1]

    def series(self) -> List[Tuple[float, float]]:
        """The ``(time, capacity)`` step function (copy)."""
        return list(self._steps)

    def capacity_seconds(self, through: float) -> float:
        """Integral of provisioned capacity from the first record to ``through``."""
        first_time = self._steps[0][0]
        if through < first_time:
            raise ReproError(
                f"integration horizon {through!r} precedes the first record "
                f"at {first_time!r}"
            )
        total = 0.0
        for index, (time, capacity) in enumerate(self._steps):
            if time >= through:
                break
            next_time = (
                self._steps[index + 1][0]
                if index + 1 < len(self._steps)
                else through
            )
            total += capacity * (min(next_time, through) - time)
        return total

    def mean_capacity(self, through: float) -> float:
        """Time-averaged provisioned capacity over the window."""
        horizon = through - self._steps[0][0]
        if horizon <= 0:
            return self.current_capacity
        return self.capacity_seconds(through) / horizon

    def scale_ups(self) -> int:
        """Number of applied scale-up actions."""
        return sum(1 for event in self.events if event.action == "scale-up")

    def scale_downs(self) -> int:
        """Number of applied scale-down actions."""
        return sum(1 for event in self.events if event.action == "scale-down")

    # ------------------------------------------------------------------
    # compact export / rebuild (the parallel sweep runner's wire format)
    # ------------------------------------------------------------------
    def export_payload(self) -> CapacityPayload:
        """Export the recorded steps/events as a :class:`CapacityPayload`."""
        return CapacityPayload(
            steps=list(self._steps),
            events=list(self.events),
            drain_durations=list(self.drain_durations),
        )

    @classmethod
    def from_payload(cls, payload: CapacityPayload) -> "CapacityTracker":
        """Rebuild a tracker from :meth:`export_payload`'s output."""
        first_time, first_capacity = payload.steps[0]
        tracker = cls(start_time=first_time, capacity=first_capacity)
        for time, capacity in payload.steps[1:]:
            tracker.record(time, capacity)
        tracker.events = list(payload.events)
        tracker.drain_durations = list(payload.drain_durations)
        return tracker

    def __repr__(self) -> str:
        return (
            f"CapacityTracker(capacity={self.current_capacity:g}, "
            f"steps={len(self._steps)}, events={len(self.events)})"
        )
