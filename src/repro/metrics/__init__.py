"""Measurement and reporting pipeline.

Contains the response-time collector fed by the traffic generator, the
per-server load sampler, and the statistics the paper's figures are
built from: summary statistics and CDFs, Jain's fairness index, the EWMA
filter used to smooth Figure 4, 10-minute time binning for the Wikipedia
replay, capacity-seconds accounting for the elastic control plane, and
plain-text table rendering for the benchmark output.
"""

from repro.metrics.binning import TimeBin, TimeBinner
from repro.metrics.capacity import CapacityTracker, ScalingEvent
from repro.metrics.collector import (
    CollectorTotals,
    ResponseTimeCollector,
    ServerLoadSampler,
)
from repro.metrics.ewma import (
    EWMAFilter,
    alpha_from_interval,
    smooth_series,
    smooth_timeseries,
)
from repro.metrics.fairness import jain_fairness_index, min_max_ratio
from repro.metrics.reporting import format_comparison, format_series, format_table
from repro.metrics.stats import (
    SummaryStatistics,
    cdf_at,
    deciles,
    empirical_cdf,
    improvement_factor,
    mean_or_nan,
    median_or_nan,
    percentile,
    quartiles,
    summarize,
)

__all__ = [
    "ResponseTimeCollector",
    "ServerLoadSampler",
    "CollectorTotals",
    "TimeBinner",
    "TimeBin",
    "CapacityTracker",
    "ScalingEvent",
    "EWMAFilter",
    "alpha_from_interval",
    "smooth_series",
    "smooth_timeseries",
    "jain_fairness_index",
    "min_max_ratio",
    "SummaryStatistics",
    "summarize",
    "empirical_cdf",
    "cdf_at",
    "percentile",
    "deciles",
    "quartiles",
    "mean_or_nan",
    "median_or_nan",
    "improvement_factor",
    "format_table",
    "format_series",
    "format_comparison",
]
