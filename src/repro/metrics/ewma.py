"""Exponential Window Moving Average smoothing.

The paper smooths the instantaneous-load time series of Figure 4
"through an Exponential Window Moving Average filter, of parameter
α = 1 − exp(−δt) where δt is the interval of time in seconds between two
successive data points".  This module implements exactly that filter,
both as an online accumulator and as a one-shot series transform.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import MetricsValidationError, ReproError


def alpha_from_interval(delta_t: float, time_constant: float = 1.0) -> float:
    """The paper's EWMA coefficient for a sampling interval ``delta_t``.

    ``time_constant`` generalises the formula to α = 1 − exp(−δt/τ); the
    paper uses τ = 1 s.

    Degenerate inputs raise :class:`ValueError` instead of silently
    producing a useless coefficient: ``delta_t <= 0`` would yield α = 0
    (the sample is discarded — never what a caller wants from a
    *sampling interval*), and a NaN or infinite interval, or a
    non-positive or non-finite time constant, would propagate NaN/garbage
    alphas into every downstream smoothed series.
    """
    if not math.isfinite(delta_t) or delta_t <= 0:
        raise MetricsValidationError(
            f"sampling interval must be positive and finite, got {delta_t!r}"
        )
    if not math.isfinite(time_constant) or time_constant <= 0:
        raise MetricsValidationError(
            f"time constant must be positive and finite, got {time_constant!r}"
        )
    return 1.0 - math.exp(-delta_t / time_constant)


class EWMAFilter:
    """Online exponentially weighted moving average with time-aware alpha."""

    def __init__(self, time_constant: float = 1.0) -> None:
        if not math.isfinite(time_constant) or time_constant <= 0:
            raise MetricsValidationError(
                f"time constant must be positive and finite, got {time_constant!r}"
            )
        self.time_constant = time_constant
        self._value: Optional[float] = None
        self._last_time: Optional[float] = None

    @property
    def value(self) -> Optional[float]:
        """Current smoothed value (``None`` before the first update)."""
        return self._value

    def update(self, time: float, sample: float) -> float:
        """Fold in a new sample observed at ``time``; returns the new value."""
        if self._value is None or self._last_time is None:
            if not math.isfinite(time):
                # Guard the first sample too: a NaN timestamp stored as
                # _last_time would make every later (valid) update fail
                # the ordering check with a misleading message.
                raise ReproError(
                    f"EWMA sample timestamps must be finite, got {time!r}"
                )
            self._value = sample
        else:
            if not time > self._last_time:
                # Catches reordered samples, duplicates *and* NaN
                # timestamps — all of which would otherwise reach
                # alpha_from_interval with a non-positive interval.
                raise ReproError(
                    f"EWMA samples must be strictly time-ordered "
                    f"({time!r} <= {self._last_time!r})"
                )
            alpha = alpha_from_interval(time - self._last_time, self.time_constant)
            self._value = alpha * sample + (1.0 - alpha) * self._value
        self._last_time = time
        return self._value

    def reset(self) -> None:
        """Forget all state."""
        self._value = None
        self._last_time = None


def smooth_series(
    times: Sequence[float],
    values: Sequence[float],
    time_constant: float = 1.0,
) -> List[float]:
    """Smooth an entire (times, values) series with the paper's EWMA filter."""
    if len(times) != len(values):
        raise ReproError(
            f"times and values must have equal length "
            f"({len(times)} != {len(values)})"
        )
    ewma = EWMAFilter(time_constant)
    return [ewma.update(time, value) for time, value in zip(times, values)]


def smooth_timeseries(
    series: Sequence[Tuple[float, float]], time_constant: float = 1.0
) -> List[Tuple[float, float]]:
    """Convenience wrapper for a list of ``(time, value)`` pairs."""
    times = [time for time, _ in series]
    values = [value for _, value in series]
    smoothed = smooth_series(times, values, time_constant)
    return list(zip(times, smoothed))
