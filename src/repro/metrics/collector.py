"""Response-time collection.

The traffic generator hands every finished query to a
:class:`ResponseTimeCollector`; the experiment harness then asks the
collector for exactly the series the paper's figures plot: response-time
arrays (optionally filtered by request kind), success/failure counts,
per-bin series for the Wikipedia replay, and summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.metrics.binning import TimeBinner
from repro.metrics.stats import SummaryStatistics, empirical_cdf, summarize
from repro.workload.client import RequestOutcome


@dataclass
class CollectorTotals:
    """Success/failure counts of a run."""

    completed: int
    failed: int

    @property
    def total(self) -> int:
        """All finished queries, successful or not."""
        return self.completed + self.failed

    @property
    def failure_ratio(self) -> float:
        """Fraction of queries that failed (reset)."""
        if self.total == 0:
            return 0.0
        return self.failed / self.total


@dataclass
class CollectorPayload:
    """Compact, picklable export of a :class:`ResponseTimeCollector`.

    Outcomes are stored as parallel :mod:`numpy` arrays (one row per
    query, successes and failures separately) plus small string tables
    for the request kinds and failure reasons, so a 20k-query run
    crosses a ``multiprocessing`` pipe as a handful of contiguous
    buffers instead of tens of thousands of Python objects.  Request
    URLs are not round-tripped (nothing downstream of the collector
    reads them); a rebuilt collector reports every URL as ``""``.
    """

    name: str
    kinds: Tuple[str, ...]
    failure_reasons: Tuple[str, ...]
    #: Successful queries: ids, kind codes and the three timestamps.
    ok_request_ids: np.ndarray
    ok_kind_codes: np.ndarray
    ok_sent_at: np.ndarray
    ok_established_at: np.ndarray
    ok_completed_at: np.ndarray
    #: Failed queries: ids, kind codes, timestamps and reason codes
    #: (an index into :attr:`failure_reasons`; -1 means no reason).
    fail_request_ids: np.ndarray
    fail_kind_codes: np.ndarray
    fail_sent_at: np.ndarray
    fail_established_at: np.ndarray
    fail_reason_codes: np.ndarray


def _encode_outcomes(
    outcomes: Sequence[RequestOutcome],
    kind_codes: Dict[str, int],
    kinds: List[str],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(ids, kind codes, sent_at, established_at)`` arrays for one side."""
    ids = np.empty(len(outcomes), dtype=np.int64)
    codes = np.empty(len(outcomes), dtype=np.int32)
    sent = np.empty(len(outcomes), dtype=np.float64)
    established = np.empty(len(outcomes), dtype=np.float64)
    for row, outcome in enumerate(outcomes):
        ids[row] = outcome.request_id
        code = kind_codes.get(outcome.kind)
        if code is None:
            code = kind_codes[outcome.kind] = len(kinds)
            kinds.append(outcome.kind)
        codes[row] = code
        sent[row] = outcome.sent_at
        established[row] = (
            np.nan if outcome.established_at is None else outcome.established_at
        )
    return ids, codes, sent, established


def _float_or_none(value: float) -> Optional[float]:
    return None if np.isnan(value) else float(value)


class ResponseTimeCollector:
    """Accumulates per-query outcomes for one experiment run."""

    def __init__(self, name: str = "run") -> None:
        self.name = name
        self._outcomes: List[RequestOutcome] = []
        self._failed: List[RequestOutcome] = []

    # ------------------------------------------------------------------
    # recording (OutcomeSink protocol)
    # ------------------------------------------------------------------
    def record(self, outcome: RequestOutcome) -> None:
        """Store one finished query (called by the traffic generator)."""
        if outcome.succeeded:
            self._outcomes.append(outcome)
        else:
            self._failed.append(outcome)

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    @property
    def totals(self) -> CollectorTotals:
        """Success/failure counts."""
        return CollectorTotals(completed=len(self._outcomes), failed=len(self._failed))

    def outcomes(self, kind: Optional[str] = None) -> List[RequestOutcome]:
        """Successful outcomes, optionally filtered by request kind."""
        if kind is None:
            return list(self._outcomes)
        return [outcome for outcome in self._outcomes if outcome.kind == kind]

    def failures(self, kind: Optional[str] = None) -> List[RequestOutcome]:
        """Failed outcomes, optionally filtered by request kind."""
        if kind is None:
            return list(self._failed)
        return [outcome for outcome in self._failed if outcome.kind == kind]

    def response_times(self, kind: Optional[str] = None) -> List[float]:
        """Response times (seconds) of successful queries.

        Iterates the stored outcomes directly instead of materialising
        the intermediate :meth:`outcomes` copy — the summary/CDF paths
        call this once per figure series over runs with tens of
        thousands of outcomes.
        """
        return [
            outcome.response_time
            for outcome in self._outcomes
            if outcome.response_time is not None
            and (kind is None or outcome.kind == kind)
        ]

    def summary(self, kind: Optional[str] = None) -> SummaryStatistics:
        """Summary statistics of the response times."""
        times = self.response_times(kind)
        if not times:
            raise ReproError(
                f"collector {self.name!r} has no successful outcomes"
                + (f" of kind {kind!r}" if kind else "")
            )
        return summarize(times)

    def cdf(self, kind: Optional[str] = None):
        """Empirical response-time CDF (Figures 3, 5 and 8)."""
        return empirical_cdf(self.response_times(kind))

    def binned(
        self,
        bin_width: float = 600.0,
        kind: Optional[str] = None,
        through: Optional[float] = None,
    ) -> TimeBinner:
        """Response times binned by *arrival* time (Figures 6 and 7).

        ``through`` pre-binds the returned binner's horizon, so trailing
        empty bins up to that timestamp are materialised even when the
        caller never passes a horizon to :meth:`TimeBinner.bins` itself.
        """
        binner = TimeBinner(bin_width=bin_width, through=through)
        for outcome in self._outcomes:
            if outcome.response_time is not None and (
                kind is None or outcome.kind == kind
            ):
                binner.add(outcome.sent_at, outcome.response_time)
        return binner

    def mean_response_time(self, kind: Optional[str] = None) -> float:
        """Mean response time of successful queries (Figure 2's y-axis)."""
        return self.summary(kind).mean

    # ------------------------------------------------------------------
    # compact export / rebuild (the parallel sweep runner's wire format)
    # ------------------------------------------------------------------
    def export_payload(self) -> CollectorPayload:
        """Export the recorded outcomes as a :class:`CollectorPayload`."""
        kinds: List[str] = []
        kind_codes: Dict[str, int] = {}
        ok_ids, ok_codes, ok_sent, ok_established = _encode_outcomes(
            self._outcomes, kind_codes, kinds
        )
        ok_completed = np.array(
            [outcome.completed_at for outcome in self._outcomes], dtype=np.float64
        )
        fail_ids, fail_codes, fail_sent, fail_established = _encode_outcomes(
            self._failed, kind_codes, kinds
        )
        reasons: List[str] = []
        reason_codes: Dict[str, int] = {}
        fail_reasons = np.empty(len(self._failed), dtype=np.int32)
        for row, outcome in enumerate(self._failed):
            if outcome.failure_reason is None:
                fail_reasons[row] = -1
                continue
            code = reason_codes.get(outcome.failure_reason)
            if code is None:
                code = reason_codes[outcome.failure_reason] = len(reasons)
                reasons.append(outcome.failure_reason)
            fail_reasons[row] = code
        return CollectorPayload(
            name=self.name,
            kinds=tuple(kinds),
            failure_reasons=tuple(reasons),
            ok_request_ids=ok_ids,
            ok_kind_codes=ok_codes,
            ok_sent_at=ok_sent,
            ok_established_at=ok_established,
            ok_completed_at=ok_completed,
            fail_request_ids=fail_ids,
            fail_kind_codes=fail_codes,
            fail_sent_at=fail_sent,
            fail_established_at=fail_established,
            fail_reason_codes=fail_reasons,
        )

    @classmethod
    def from_payload(cls, payload: CollectorPayload) -> "ResponseTimeCollector":
        """Rebuild a collector from :meth:`export_payload`'s output.

        The rebuilt collector is interchangeable with the original for
        every series the figures consume (response times, CDFs, binned
        series, totals); only request URLs are lost in the round trip.
        """
        collector = cls(name=payload.name)
        for row in range(len(payload.ok_request_ids)):
            collector._outcomes.append(
                RequestOutcome(
                    request_id=int(payload.ok_request_ids[row]),
                    kind=payload.kinds[int(payload.ok_kind_codes[row])],
                    url="",
                    sent_at=float(payload.ok_sent_at[row]),
                    established_at=_float_or_none(payload.ok_established_at[row]),
                    completed_at=float(payload.ok_completed_at[row]),
                )
            )
        for row in range(len(payload.fail_request_ids)):
            reason_code = int(payload.fail_reason_codes[row])
            collector._failed.append(
                RequestOutcome(
                    request_id=int(payload.fail_request_ids[row]),
                    kind=payload.kinds[int(payload.fail_kind_codes[row])],
                    url="",
                    sent_at=float(payload.fail_sent_at[row]),
                    established_at=_float_or_none(payload.fail_established_at[row]),
                    failed=True,
                    failure_reason=(
                        None
                        if reason_code < 0
                        else payload.failure_reasons[reason_code]
                    ),
                )
            )
        return collector

    def __len__(self) -> int:
        return len(self._outcomes) + len(self._failed)

    def __repr__(self) -> str:
        totals = self.totals
        return (
            f"ResponseTimeCollector(name={self.name!r}, "
            f"completed={totals.completed}, failed={totals.failed})"
        )


@dataclass
class LoadSamplerPayload:
    """Compact, picklable export of a :class:`ServerLoadSampler`."""

    interval: float
    times: np.ndarray
    #: ``(num_samples, num_servers)`` busy-count matrix.
    samples: np.ndarray


class ServerLoadSampler:
    """Periodic sampler of per-server busy-thread counts (Figure 4).

    The sampler polls a set of scoreboard-like objects at a fixed period
    and stores ``(time, [busy counts])`` rows; the experiment harness
    turns them into the mean-load and fairness-index series.
    """

    def __init__(self, interval: float = 0.5) -> None:
        if interval <= 0:
            raise ReproError(f"sampling interval must be positive, got {interval!r}")
        self.interval = interval
        self._times: List[float] = []
        self._samples: List[List[int]] = []

    def sample(self, time: float, busy_counts: Sequence[int]) -> None:
        """Record one snapshot of per-server busy counts."""
        if self._samples and len(busy_counts) != len(self._samples[0]):
            raise ReproError(
                "inconsistent number of servers across load samples "
                f"({len(busy_counts)} != {len(self._samples[0])})"
            )
        self._times.append(time)
        self._samples.append([int(count) for count in busy_counts])

    @property
    def times(self) -> List[float]:
        """Sample timestamps."""
        return list(self._times)

    @property
    def samples(self) -> List[List[int]]:
        """Per-sample busy-count vectors."""
        return [list(row) for row in self._samples]

    def mean_load_series(self) -> List[Tuple[float, float]]:
        """``(time, mean busy threads across servers)`` series."""
        return [
            (time, sum(row) / len(row) if row else 0.0)
            for time, row in zip(self._times, self._samples)
        ]

    def fairness_series(self) -> List[Tuple[float, float]]:
        """``(time, Jain fairness index of per-server loads)`` series."""
        from repro.metrics.fairness import jain_fairness_index

        return [
            (time, jain_fairness_index(row))
            for time, row in zip(self._times, self._samples)
        ]

    # ------------------------------------------------------------------
    # compact export / rebuild (the parallel sweep runner's wire format)
    # ------------------------------------------------------------------
    def export_payload(self) -> LoadSamplerPayload:
        """Export the recorded samples as a :class:`LoadSamplerPayload`."""
        num_servers = len(self._samples[0]) if self._samples else 0
        return LoadSamplerPayload(
            interval=self.interval,
            times=np.array(self._times, dtype=np.float64),
            samples=np.array(self._samples, dtype=np.int64).reshape(
                len(self._samples), num_servers
            ),
        )

    @classmethod
    def from_payload(cls, payload: LoadSamplerPayload) -> "ServerLoadSampler":
        """Rebuild a sampler from :meth:`export_payload`'s output."""
        sampler = cls(interval=payload.interval)
        sampler._times = [float(time) for time in payload.times]
        sampler._samples = [
            [int(count) for count in row] for row in payload.samples
        ]
        return sampler

    def __len__(self) -> int:
        return len(self._samples)
