"""Response-time collection.

The traffic generator hands every finished query to a
:class:`ResponseTimeCollector`; the experiment harness then asks the
collector for exactly the series the paper's figures plot: response-time
arrays (optionally filtered by request kind), success/failure counts,
per-bin series for the Wikipedia replay, and summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.metrics.binning import TimeBinner
from repro.metrics.stats import SummaryStatistics, empirical_cdf, summarize
from repro.workload.client import RequestOutcome


@dataclass
class CollectorTotals:
    """Success/failure counts of a run."""

    completed: int
    failed: int

    @property
    def total(self) -> int:
        """All finished queries, successful or not."""
        return self.completed + self.failed

    @property
    def failure_ratio(self) -> float:
        """Fraction of queries that failed (reset)."""
        if self.total == 0:
            return 0.0
        return self.failed / self.total


class ResponseTimeCollector:
    """Accumulates per-query outcomes for one experiment run."""

    def __init__(self, name: str = "run") -> None:
        self.name = name
        self._outcomes: List[RequestOutcome] = []
        self._failed: List[RequestOutcome] = []

    # ------------------------------------------------------------------
    # recording (OutcomeSink protocol)
    # ------------------------------------------------------------------
    def record(self, outcome: RequestOutcome) -> None:
        """Store one finished query (called by the traffic generator)."""
        if outcome.succeeded:
            self._outcomes.append(outcome)
        else:
            self._failed.append(outcome)

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    @property
    def totals(self) -> CollectorTotals:
        """Success/failure counts."""
        return CollectorTotals(completed=len(self._outcomes), failed=len(self._failed))

    def outcomes(self, kind: Optional[str] = None) -> List[RequestOutcome]:
        """Successful outcomes, optionally filtered by request kind."""
        if kind is None:
            return list(self._outcomes)
        return [outcome for outcome in self._outcomes if outcome.kind == kind]

    def failures(self, kind: Optional[str] = None) -> List[RequestOutcome]:
        """Failed outcomes, optionally filtered by request kind."""
        if kind is None:
            return list(self._failed)
        return [outcome for outcome in self._failed if outcome.kind == kind]

    def response_times(self, kind: Optional[str] = None) -> List[float]:
        """Response times (seconds) of successful queries."""
        return [
            outcome.response_time
            for outcome in self.outcomes(kind)
            if outcome.response_time is not None
        ]

    def summary(self, kind: Optional[str] = None) -> SummaryStatistics:
        """Summary statistics of the response times."""
        times = self.response_times(kind)
        if not times:
            raise ReproError(
                f"collector {self.name!r} has no successful outcomes"
                + (f" of kind {kind!r}" if kind else "")
            )
        return summarize(times)

    def cdf(self, kind: Optional[str] = None):
        """Empirical response-time CDF (Figures 3, 5 and 8)."""
        return empirical_cdf(self.response_times(kind))

    def binned(
        self,
        bin_width: float = 600.0,
        kind: Optional[str] = None,
        through: Optional[float] = None,
    ) -> TimeBinner:
        """Response times binned by *arrival* time (Figures 6 and 7)."""
        binner = TimeBinner(bin_width=bin_width)
        for outcome in self.outcomes(kind):
            if outcome.response_time is not None:
                binner.add(outcome.sent_at, outcome.response_time)
        return binner

    def mean_response_time(self, kind: Optional[str] = None) -> float:
        """Mean response time of successful queries (Figure 2's y-axis)."""
        return self.summary(kind).mean

    def __len__(self) -> int:
        return len(self._outcomes) + len(self._failed)

    def __repr__(self) -> str:
        totals = self.totals
        return (
            f"ResponseTimeCollector(name={self.name!r}, "
            f"completed={totals.completed}, failed={totals.failed})"
        )


class ServerLoadSampler:
    """Periodic sampler of per-server busy-thread counts (Figure 4).

    The sampler polls a set of scoreboard-like objects at a fixed period
    and stores ``(time, [busy counts])`` rows; the experiment harness
    turns them into the mean-load and fairness-index series.
    """

    def __init__(self, interval: float = 0.5) -> None:
        if interval <= 0:
            raise ReproError(f"sampling interval must be positive, got {interval!r}")
        self.interval = interval
        self._times: List[float] = []
        self._samples: List[List[int]] = []

    def sample(self, time: float, busy_counts: Sequence[int]) -> None:
        """Record one snapshot of per-server busy counts."""
        if self._samples and len(busy_counts) != len(self._samples[0]):
            raise ReproError(
                "inconsistent number of servers across load samples "
                f"({len(busy_counts)} != {len(self._samples[0])})"
            )
        self._times.append(time)
        self._samples.append([int(count) for count in busy_counts])

    @property
    def times(self) -> List[float]:
        """Sample timestamps."""
        return list(self._times)

    @property
    def samples(self) -> List[List[int]]:
        """Per-sample busy-count vectors."""
        return [list(row) for row in self._samples]

    def mean_load_series(self) -> List[Tuple[float, float]]:
        """``(time, mean busy threads across servers)`` series."""
        return [
            (time, sum(row) / len(row) if row else 0.0)
            for time, row in zip(self._times, self._samples)
        ]

    def fairness_series(self) -> List[Tuple[float, float]]:
        """``(time, Jain fairness index of per-server loads)`` series."""
        from repro.metrics.fairness import jain_fairness_index

        return [
            (time, jain_fairness_index(row))
            for time, row in zip(self._times, self._samples)
        ]

    def __len__(self) -> int:
        return len(self._samples)
