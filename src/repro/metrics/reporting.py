"""Plain-text reporting of experiment results.

The benchmarks print the same rows and series the paper's figures show;
these helpers render them as aligned text tables so the output of
``pytest benchmarks/ --benchmark-only`` (and of the examples) is readable
without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.3f}",
    title: Optional[str] = None,
) -> str:
    """Render a simple aligned text table.

    Floats are formatted with ``float_format``; other values use
    ``str``.  Column widths adapt to the longest cell.
    """
    if not headers:
        raise ReproError("a table needs at least one column")

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered_rows = [[render(cell) for cell in row] for row in rows]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
    widths = [
        max(len(str(headers[column])), *(len(row[column]) for row in rendered_rows))
        if rendered_rows
        else len(str(headers[column]))
        for column in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    series: Dict[str, Sequence[float]],
    x_values: Sequence[float],
    float_format: str = "{:.3f}",
    title: Optional[str] = None,
) -> str:
    """Render several named series sharing an x axis as a table."""
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            values = series[name]
            row.append(values[index] if index < len(values) else float("nan"))
        rows.append(row)
    return format_table(headers, rows, float_format=float_format, title=title)


def format_comparison(
    metric_name: str,
    baseline_name: str,
    baseline_value: float,
    other: Dict[str, float],
    float_format: str = "{:.3f}",
) -> str:
    """Render a baseline-vs-alternatives comparison with improvement factors."""
    headers = ["policy", metric_name, f"vs {baseline_name}"]
    rows: List[List[object]] = [[baseline_name, baseline_value, "1.00x"]]
    for name, value in other.items():
        if value > 0:
            factor = baseline_value / value
            rows.append([name, value, f"{factor:.2f}x"])
        else:
            rows.append([name, value, "n/a"])
    return format_table(headers, rows, float_format=float_format)
