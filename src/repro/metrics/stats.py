"""Statistical helpers used by the evaluation pipeline.

Everything the paper's figures report — means, medians, deciles,
quartiles, empirical CDFs — is computed here, in one place, so that the
experiment harness, the benchmarks and the tests all agree on the exact
definitions (e.g. deciles are the 10th..90th percentiles with linear
interpolation, matching gnuplot's default used by the paper's plots).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ReproError


@dataclass
class SummaryStatistics:
    """Summary of a sample of response times (or any positive metric)."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p75: float
    p90: float
    p99: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form, used by the reporting helpers."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "median": self.median,
            "p75": self.p75,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> SummaryStatistics:
    """Summary statistics of ``values`` (which must be non-empty)."""
    if len(values) == 0:
        raise ReproError("cannot summarize an empty sample")
    array = np.asarray(values, dtype=float)
    return SummaryStatistics(
        count=int(array.size),
        mean=float(np.mean(array)),
        std=float(np.std(array)),
        minimum=float(np.min(array)),
        median=float(np.percentile(array, 50)),
        p75=float(np.percentile(array, 75)),
        p90=float(np.percentile(array, 90)),
        p99=float(np.percentile(array, 99)),
        maximum=float(np.max(array)),
    )


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``values``.

    Returns ``(x, p)`` where ``p[i]`` is the fraction of samples less
    than or equal to ``x[i]``; ``x`` is sorted ascending.  This is the
    representation used for Figures 3, 5 and 8.
    """
    if len(values) == 0:
        raise ReproError("cannot compute the CDF of an empty sample")
    x = np.sort(np.asarray(values, dtype=float))
    p = np.arange(1, x.size + 1) / x.size
    return x, p


def cdf_at(values: Sequence[float], thresholds: Sequence[float]) -> List[float]:
    """Fraction of samples at or below each threshold."""
    if len(values) == 0:
        raise ReproError("cannot evaluate the CDF of an empty sample")
    array = np.sort(np.asarray(values, dtype=float))
    return [
        float(np.searchsorted(array, threshold, side="right")) / array.size
        for threshold in thresholds
    ]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation."""
    if len(values) == 0:
        raise ReproError("cannot compute a percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ReproError(f"percentile must be in [0, 100], got {q!r}")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def deciles(values: Sequence[float]) -> List[float]:
    """Deciles 1 through 9 (the paper's Figure 7 bands)."""
    return [percentile(values, 10 * k) for k in range(1, 10)]


def quartiles(values: Sequence[float]) -> Tuple[float, float, float]:
    """First quartile, median and third quartile."""
    return (
        percentile(values, 25),
        percentile(values, 50),
        percentile(values, 75),
    )


def mean_or_nan(values: Sequence[float]) -> float:
    """Mean of ``values``, or NaN for an empty sample (binned series)."""
    if len(values) == 0:
        return float("nan")
    return float(np.mean(np.asarray(values, dtype=float)))


def median_or_nan(values: Sequence[float]) -> float:
    """Median of ``values``, or NaN for an empty sample (binned series)."""
    if len(values) == 0:
        return float("nan")
    return float(np.median(np.asarray(values, dtype=float)))


def improvement_factor(baseline: float, improved: float) -> float:
    """How many times smaller ``improved`` is than ``baseline``.

    The paper reports results like "up to 2.3× better than RR"; this is
    the corresponding ratio (baseline / improved).
    """
    if improved <= 0:
        raise ReproError(f"improved value must be positive, got {improved!r}")
    return baseline / improved
