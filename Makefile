# Convenience targets for the SRLB reproduction.
#
#   make test        - tier-1 test suite (the gate every PR must keep green)
#   make bench-smoke - one fast benchmark per scenario family, reduced scale
#   make docs-check  - doc-vs-CLI consistency tests only
#   make bench       - the full benchmark suite at default (reduced) scale

PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

BENCH_OPTS := -o python_files='bench_*.py' -o python_functions='bench_*'

.PHONY: test bench bench-smoke docs-check

test:
	$(PYTHON) -m pytest -x -q

docs-check:
	$(PYTHON) -m pytest -q tests/test_docs_cli.py

# One representative benchmark per scenario family (figures, ablations,
# resilience) at a deliberately small scale: a smoke signal, not a
# measurement.
bench-smoke:
	REPRO_BENCH_QUERIES=800 $(PYTHON) -m pytest -q $(BENCH_OPTS) \
		benchmarks/bench_figure2_mean_response.py \
		benchmarks/bench_ablation_selection_scheme.py \
		benchmarks/bench_resilience_lb_churn.py

bench:
	$(PYTHON) -m pytest -q $(BENCH_OPTS) benchmarks
