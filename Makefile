# Convenience targets for the SRLB reproduction.
#
#   make test                - tier-1 test suite (the gate every PR must keep green)
#   make lint                - ruff check (configured in pyproject.toml; skipped
#                              with a notice when ruff is not installed)
#   make bench-smoke         - one fast benchmark per scenario family, reduced scale
#   make bench-smoke-parallel - one tiny Figure-2 sweep through the multiprocessing
#                              runner (jobs=2), so CI exercises the pool path
#   make scale-smoke         - the scale scenario at partitions=1 and 2; asserts the
#                              merged results are bit-identical (fingerprint check)
#   make chaos-smoke         - the chaos scenario at two seeds; asserts jobs=1 and
#                              jobs=2 fingerprints match per seed, differ across
#                              seeds, and the loss cell recovers >= 99% of queries
#   make telemetry-smoke     - a reduced chaos run with the streaming telemetry
#                              probe attached (writes telemetry-artifacts/), a
#                              dashboard re-render from the saved report, then the
#                              scenario goldens re-run under REPRO_TELEMETRY=1
#   make docs-check          - doc-vs-code consistency tests (CLI + performance docs)
#   make bench               - the full benchmark suite at default (reduced) scale
#   make perf                - hot-path throughput cells (events/sec), full profile;
#                              updates the `latest` slot of BENCH_PERF.json
#   make perf-smoke          - reduced perf profile (< 2 min) checked against the
#                              committed BENCH_PERF.json baseline (±30% tolerance)
#   make profile             - cProfile the poisson-high-load perf cell; writes the
#                              top-25 cumulative listing under benchmarks/profiles/
#   make build-fast          - compile the simulator run loop with mypyc (optional;
#                              prints a notice and succeeds when mypyc is missing).
#                              Enable the result with REPRO_COMPILED=1.
#   make coverage            - tier-1 suite under pytest-cov with the pinned
#                              floor (skipped with a notice when pytest-cov is
#                              not installed; CI installs it)

PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

BENCH_OPTS := -o python_files='bench_*.py' -o python_functions='bench_*'

.PHONY: test lint coverage bench bench-smoke bench-smoke-parallel scale-smoke chaos-smoke telemetry-smoke docs-check perf perf-smoke profile build-fast

test:
	$(PYTHON) -m pytest -x -q

# Coverage floor for `make coverage` / the CI coverage job.  Pinned
# conservatively below the line coverage of the tier-1 suite; raise it
# as the suite grows, never lower it to admit a regression.
COVERAGE_FLOOR := 80

# Like `make lint`, this degrades gracefully: the container image may
# not ship pytest-cov, and the tier-1 gate must not depend on it.  CI
# installs pytest-cov on the runner and enforces the floor for real.
coverage:
	@if $(PYTHON) -c 'import pytest_cov' >/dev/null 2>&1; then \
		$(PYTHON) -m pytest -q --cov=repro --cov-report=term \
			--cov-report=xml:coverage.xml --cov-fail-under=$(COVERAGE_FLOOR); \
	else \
		echo "pytest-cov is not installed; skipping coverage (pip install pytest-cov)"; \
	fi

# The container image may not ship ruff; CI installs it (see
# .github/workflows/ci.yml).  Skipping with a notice keeps `make lint`
# total on bare environments without masking real lint failures in CI.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	elif $(PYTHON) -c 'import ruff' >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff is not installed; skipping lint (pip install ruff)"; \
	fi

docs-check:
	$(PYTHON) -m pytest -q tests/test_docs_cli.py tests/test_docs_performance.py

# Simulator-throughput measurement (see docs/performance.md).  The full
# profile reports events/sec per cell and records the run in the
# `latest` slot of BENCH_PERF.json; the smoke profile is the CI
# regression gate against the committed baseline.
perf:
	$(PYTHON) benchmarks/bench_perf_hotpath.py --profile full

perf-smoke:
	$(PYTHON) benchmarks/bench_perf_hotpath.py --profile smoke --check --tolerance 0.30 --no-save

# Where the per-event time actually goes: cProfile over the
# poisson-high-load cell (smoke size, so it finishes quickly), top 25
# functions by cumulative time, written under benchmarks/profiles/ for
# before/after comparison in perf-focused PRs.
profile:
	$(PYTHON) benchmarks/bench_perf_hotpath.py --profile smoke --cell poisson-high-load \
		--cprofile benchmarks/profiles --no-save

# Optional compiled run loop (repro.sim._fastloop_c, used only under
# REPRO_COMPILED=1).  Skips with a notice when mypyc is not installed;
# the pure-Python loop stays canonical either way.
build-fast:
	$(PYTHON) tools/build_fastloop.py

# One representative benchmark per scenario family (figures, ablations,
# resilience) at a deliberately small scale: a smoke signal, not a
# measurement.
bench-smoke:
	REPRO_BENCH_QUERIES=800 REPRO_BENCH_TIME_FACTOR=0.2 \
	REPRO_BENCH_ARRIVALS=800 REPRO_BENCH_ADV_QUERIES=1000 \
		$(PYTHON) -m pytest -q $(BENCH_OPTS) \
		benchmarks/bench_figure2_mean_response.py \
		benchmarks/bench_ablation_selection_scheme.py \
		benchmarks/bench_resilience_lb_churn.py \
		benchmarks/bench_flash_crowd.py \
		benchmarks/bench_heterogeneous_fleet.py \
		benchmarks/bench_autoscale.py \
		benchmarks/bench_heavy_tail.py \
		benchmarks/bench_adversarial.py \
		benchmarks/bench_scale.py

# The same Figure-2 smoke sweep, fanned out over 2 worker processes:
# a cheap end-to-end signal that the parallel sweep runner still works
# (and still matches the serial results, which the assertions pin).
bench-smoke-parallel:
	REPRO_BENCH_QUERIES=800 REPRO_BENCH_RHO_POINTS=2 REPRO_BENCH_JOBS=2 \
		$(PYTHON) -m pytest -q $(BENCH_OPTS) \
		benchmarks/bench_figure2_mean_response.py

# One reduced scale run executed serially and again over 2 partition
# processes; the benchmark asserts the merged results are bit-identical
# (SHA-256 fingerprint), which holds on any core count — this is the
# determinism gate of the partitioned engine, not a perf measurement.
scale-smoke:
	REPRO_BENCH_SCALE_QUERIES=2000 REPRO_BENCH_SCALE_PARTITIONS=2 \
		$(PYTHON) -m pytest -q $(BENCH_OPTS) \
		benchmarks/bench_scale.py

# The chaos scenario at smoke scale under two seeds, each run serially
# and again over a 2-process pool; the benchmark asserts per-seed
# jobs=1/jobs=2 fingerprints are bit-identical, the two seeds disagree
# (the injectors really draw from the seed), drop counters reconcile,
# and client retransmission recovers >= 99% of the loss cell's queries.
chaos-smoke:
	REPRO_BENCH_CHAOS_QUERIES=600 REPRO_BENCH_CHAOS_JOBS=2 \
		$(PYTHON) -m pytest -q $(BENCH_OPTS) \
		benchmarks/bench_chaos.py

# The telemetry plane end to end: a reduced chaos run with the
# streaming probe attached and the dashboard artifacts written (console
# sparklines plus telemetry.json and dashboard.html under
# telemetry-artifacts/), a dashboard re-render from the saved report,
# then the scenario goldens re-run with REPRO_TELEMETRY=1 — the
# bit-identity gate that an attached probe never moves a result.
telemetry-smoke:
	$(PYTHON) -m repro.cli chaos --servers 4 --queries 600 \
		--mode baseline --mode loss --jobs 2 \
		--telemetry-out telemetry-artifacts
	$(PYTHON) -m repro.cli dashboard telemetry-artifacts/telemetry.json \
		--out telemetry-artifacts/dashboard-rerendered.html \
		--title "chaos telemetry smoke"
	REPRO_TELEMETRY=1 $(PYTHON) -m pytest -q tests/test_scenario_golden.py

bench:
	$(PYTHON) -m pytest -q $(BENCH_OPTS) benchmarks
