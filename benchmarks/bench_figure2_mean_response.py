"""Figure 2 — mean response time vs normalized request rate ρ.

Paper: "Average page load time for the Poisson workload as a function of
the normalized request rate ρ: RR vs different SRc policies (4, 8, 16,
and dynamic)."  The paper's headline numbers: SR4 is up to 2.3× better
than RR at ρ = 0.88, SR8/SR16 also beat RR but by less, and SRdyn tracks
the best static policy.

The benchmark sweeps a reduced set of load factors (always including the
paper's highlighted ρ = 0.88) with every policy of the paper's suite and
prints the mean response time per (ρ, policy), plus the SR4-vs-RR
improvement factor at the heaviest point.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import (
    run_once,
    scale_jobs,
    scale_queries,
    scale_rho_points,
    write_output,
)
from repro.experiments import figures
from repro.experiments.config import PoissonSweepConfig, paper_policy_suite
from repro.experiments.poisson_experiment import PoissonSweep
from repro.metrics.reporting import format_comparison


def _load_factors(points: int) -> tuple:
    """Evenly spaced load factors ending at the paper's ρ = 0.88."""
    return tuple(round(float(value), 3) for value in np.linspace(0.3, 0.88, points))


def bench_figure2_mean_response_time(benchmark):
    config = PoissonSweepConfig(
        load_factors=_load_factors(scale_rho_points()),
        num_queries=scale_queries(),
        policies=tuple(paper_policy_suite()),
    )

    # REPRO_BENCH_JOBS > 1 exercises the multiprocessing runner; the
    # sweep's results are identical in both modes, only wall-clock moves.
    sweep_result = run_once(
        benchmark, lambda: PoissonSweep(config).run(jobs=scale_jobs())
    )

    table = figures.render_figure2(sweep_result)
    heavy = max(config.load_factors)
    comparison = format_comparison(
        f"mean response time (s) at rho={heavy}",
        "RR",
        sweep_result.run("RR", heavy).mean_response_time,
        {
            name: sweep_result.run(name, heavy).mean_response_time
            for name in ("SR4", "SR8", "SR16", "SRdyn")
        },
    )
    write_output("figure2_mean_response", table + "\n\n" + comparison)

    # Reproduction checks (shape, not absolute values): every SR policy
    # beats RR at the heaviest load, and SR4 wins by a clear margin.
    rr_heavy = sweep_result.run("RR", heavy).mean_response_time
    sr4_heavy = sweep_result.run("SR4", heavy).mean_response_time
    assert sr4_heavy < rr_heavy
    assert sweep_result.run("SR8", heavy).mean_response_time < rr_heavy
    assert rr_heavy / sr4_heavy > 1.3
