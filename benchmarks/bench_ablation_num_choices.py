"""Ablation A1 — number of SR candidates (the power of d choices).

The paper inserts exactly two candidate servers into the SR list, citing
Mitzenmacher's result that the marginal benefit of more than two choices
is small.  This ablation sweeps d ∈ {1, 2, 3, 4} candidates with the SR4
acceptance policy at heavy load and compares the simulated improvement
against the analytic supermarket-model prediction.
"""

from __future__ import annotations

from benchmarks.conftest import scale_queries, run_once, write_output
from repro.analysis.power_of_choices import improvement_over_random
from repro.experiments.config import HIGH_LOAD_FACTOR, PolicySpec, TestbedConfig
from repro.experiments.poisson_experiment import run_poisson_once
from repro.metrics.reporting import format_table


def _spec(num_candidates: int) -> PolicySpec:
    if num_candidates == 1:
        return PolicySpec(name="d=1 (RR)", acceptance_policy="always", num_candidates=1)
    return PolicySpec(
        name=f"d={num_candidates}", acceptance_policy="SR4", num_candidates=num_candidates
    )


def bench_ablation_number_of_choices(benchmark):
    config = TestbedConfig()
    queries = scale_queries()
    choices = (1, 2, 3, 4)

    def run_all():
        return {
            d: run_poisson_once(
                config, _spec(d), load_factor=HIGH_LOAD_FACTOR, num_queries=queries
            )
            for d in choices
        }

    runs = run_once(benchmark, run_all)

    baseline = runs[1].mean_response_time
    rows = []
    for d in choices:
        mean = runs[d].mean_response_time
        simulated_speedup = baseline / mean
        analytic_speedup = (
            1.0 if d == 1 else improvement_over_random(HIGH_LOAD_FACTOR, d)
        )
        rows.append([f"d={d}", mean, simulated_speedup, analytic_speedup])
    table = format_table(
        ["candidates", "mean response (s)", "simulated speed-up", "supermarket-model speed-up"],
        rows,
        title="Ablation A1: number of SR candidates at rho=0.88 (SR4 acceptance policy)",
    )
    write_output("ablation_num_choices", table)

    # Shape checks: two choices give a large improvement over one, and
    # the marginal benefit of the third and fourth choices is smaller
    # than the first step (diminishing returns).
    gain_1_to_2 = runs[1].mean_response_time - runs[2].mean_response_time
    gain_2_to_4 = runs[2].mean_response_time - runs[4].mean_response_time
    assert runs[2].mean_response_time < runs[1].mean_response_time
    assert gain_1_to_2 > gain_2_to_4
