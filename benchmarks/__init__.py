"""Benchmark harness regenerating every figure of the paper's evaluation.

Run with ``pytest benchmarks/ --benchmark-only``.  See ``conftest.py``
for the scale knobs and DESIGN.md §4 for the figure-to-benchmark map.
"""
