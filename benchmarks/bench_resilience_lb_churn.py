"""Resilience benchmark — broken flows under load-balancer churn.

Not a figure of the paper: this benchmark quantifies the §II-B
resiliency *claim* — that flow-stable candidate selection lets SRLB
instances be killed and added at will behind an ECMP edge without
breaking in-flight flows, while random selection leaves the victim's
flows unrecoverable.  One instance of a four-LB tier is killed halfway
through the run and another is added at three quarters, under each
selection scheme, over the same workload.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, scale_queries, write_output
from repro.experiments.config import ChurnEvent, ResilienceConfig, TestbedConfig
from repro.experiments.resilience_experiment import (
    render_resilience_table,
    run_resilience_comparison,
)


def bench_resilience_lb_churn(benchmark):
    config = ResilienceConfig(
        testbed=TestbedConfig(
            num_load_balancers=4,
            request_spread=2.0,
            request_chunks=5,
            # Free workers pinned by churn-broken flows, as the
            # ResilienceConfig default testbed does.
            request_timeout=5.0,
        ),
        num_queries=scale_queries(),
        churn=(
            ChurnEvent(at_fraction=0.5, action="kill"),
            ChurnEvent(at_fraction=0.75, action="add"),
        ),
    )

    comparison = run_once(benchmark, lambda: run_resilience_comparison(config))

    table = render_resilience_table(comparison)
    write_output("resilience_lb_churn", table)

    consistent = comparison.run("consistent-hash")
    random_run = comparison.run("random")
    # Shape checks, mirroring the paper's claim: with consistent hashing
    # the tier absorbs the churn (< 5% of in-flight flows break), while
    # random selection loses a macroscopic fraction of the victim's
    # flows.  The kill exposes ~1/4 of in-flight flows, so the random
    # scheme should break measurably more than the consistent one.
    assert consistent.broken_fraction < 0.05
    assert random_run.broken_fraction > consistent.broken_fraction
    assert consistent.recovery_hunts > 0
    assert random_run.queries_hung == 0 and consistent.queries_hung == 0
