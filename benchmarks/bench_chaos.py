"""Chaos scenario — fault injection is deterministic and recoverable.

The ``chaos`` family replays one workload over the 2-LB ECMP tier under
four impairment recipes (baseline / loss / flap / jitter).  This
benchmark runs the family at smoke scale under **two different seeds**
and pins the three properties the fault plane rests on:

* the per-mode outcome fingerprint is bit-identical between ``jobs=1``
  and a multi-process run — impairments draw from named substreams, so
  process fan-out is a wall-clock knob, never a results knob;
* the two seeds produce *different* fingerprints — the injectors really
  are driven by the seed, not silently inert;
* the unified drop counter always reconciles with the per-reason
  counters, and the loss cell recovers at least 99% of queries through
  client retransmission.

The same check, at the same scale, is the CI ``chaos-smoke`` job
(``make chaos-smoke``).

Scale knobs: ``REPRO_BENCH_CHAOS_QUERIES`` sets the per-cell query count
(default 600); ``REPRO_BENCH_CHAOS_JOBS`` the process count of the
parallel side (default 2).
"""

from __future__ import annotations

import dataclasses
import os

from benchmarks.conftest import run_once, write_output
from repro.experiments.chaos_experiment import CHAOS_SCENARIO, run_chaos
from repro.experiments.config import ChaosConfig
from repro.experiments.figures import render_scenario_figure

#: The two workload/simulation seeds compared by the benchmark.
SEEDS = (42, 1337)


def _queries() -> int:
    return int(os.environ.get("REPRO_BENCH_CHAOS_QUERIES", 600))


def _jobs() -> int:
    return int(os.environ.get("REPRO_BENCH_CHAOS_JOBS", 2))


def _config(seed: int) -> ChaosConfig:
    base = CHAOS_SCENARIO.smoke_config()
    return dataclasses.replace(
        base,
        num_queries=_queries(),
        workload_seed=seed,
        testbed=dataclasses.replace(base.testbed, seed=seed),
    )


def bench_chaos_seeded_determinism(benchmark):
    configs = {seed: _config(seed) for seed in SEEDS}
    serial = {seed: run_chaos(config, jobs=1) for seed, config in configs.items()}

    first = SEEDS[0]
    parallel = {
        first: run_once(benchmark, lambda: run_chaos(configs[first], jobs=_jobs()))
    }
    for seed in SEEDS[1:]:
        parallel[seed] = run_chaos(configs[seed], jobs=_jobs())

    write_output("chaos_comparison", render_scenario_figure("chaos", serial[first]))

    for seed in SEEDS:
        for mode in configs[seed].modes:
            one_job = serial[seed].run(mode)
            many_jobs = parallel[seed].run(mode)
            # jobs=1 vs jobs=N: bit-identical outcomes per mode.
            assert many_jobs.fingerprint == one_job.fingerprint, (seed, mode)
            # Every network drop is attributed to exactly one reason.
            assert many_jobs.fault_packets_dropped == (
                many_jobs.fault_dropped_loss
                + many_jobs.fault_dropped_burst
                + many_jobs.fault_dropped_corrupted
                + many_jobs.fault_dropped_link_down
            ), (seed, mode)
        # The acceptance property: retransmission recovers the loss cell.
        loss = parallel[seed].run("loss")
        assert loss.fault_packets_dropped > 0, seed
        assert loss.completion_rate >= 0.99, seed

    # The seeds genuinely steer the workload and the injectors.
    for mode in configs[first].modes:
        assert (
            parallel[SEEDS[0]].run(mode).fingerprint
            != parallel[SEEDS[1]].run(mode).fingerprint
        ), mode
