"""Figure 6 — Wikipedia replay: query rate and median load time per bin.

Paper: "Wikipedia replay: query rate and median load time for wiki pages
over 24 hours (10 mins bins).  RR vs SR4 policy."  At the off-peak
trough (around 08:00 UTC) RR and SR4 perform similarly; as the request
rate rises towards the evening peak, RR's median page load time grows
much more than SR4's.
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_once, write_output
from benchmarks.wikipedia_shared import replay_result
from repro.experiments import figures


def bench_figure6_wikipedia_median(benchmark):
    result = run_once(benchmark, replay_result)

    table = figures.render_figure6(result)
    write_output("figure6_wikipedia_median", table)

    series = figures.figure6_series(result)
    rr_medians = [value for _, value in series["RR"]["median"] if not math.isnan(value)]
    sr4_medians = [value for _, value in series["SR4"]["median"] if not math.isnan(value)]
    rates = [value for _, value in series["RR"]["rate"]]

    # Shape checks.  (i) The diurnal rate swing is visible: the peak bin
    # carries well over the trough bin's rate.  (ii) At the peak-load bin
    # RR's median is clearly worse than SR4's, while at the trough they
    # are comparable — the paper's qualitative finding.
    assert max(rates) > 1.4 * min(rates)
    peak_bin = rates.index(max(rates))
    trough_bin = rates.index(min(rates))
    assert rr_medians[peak_bin] > 1.2 * sr4_medians[peak_bin]
    assert rr_medians[trough_bin] < 1.35 * sr4_medians[trough_bin]
