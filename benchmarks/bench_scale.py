"""Scale scenario — one partitioned run, bit-identical on any process count.

The ``scale`` family replays one aggregate query stream over ECMP-hashed
pods, each pod its own simulator partition (:mod:`repro.sim.partition`).
This benchmark runs the family at a reduced scale and pins the property
the whole design rests on: the merged result — down to its SHA-256
fingerprint — is identical whether the partitions execute in one process
or several.  The same check, at the same scale, is the CI ``scale-smoke``
job (``make scale-smoke``).

Scale knobs: ``REPRO_BENCH_SCALE_QUERIES`` sets the aggregate query count
(default 2000; the north-star runs use 1e6+ via ``make perf``);
``REPRO_BENCH_SCALE_PARTITIONS`` the process count of the partitioned
side (default 2).
"""

from __future__ import annotations

import os

from benchmarks.conftest import run_once, write_output
from repro.experiments.config import ScaleConfig, TestbedConfig
from repro.experiments.figures import render_scenario_figure
from repro.experiments.scale_experiment import ScaleResult, run_scale


def _queries() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE_QUERIES", 2_000))


def _partitions() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE_PARTITIONS", 2))


def _config() -> ScaleConfig:
    return ScaleConfig(
        testbed=TestbedConfig(
            num_servers=4, workers_per_server=8, backlog_capacity=16
        ),
        pods=4,
        num_queries=_queries(),
        max_windows=8,
    )


def bench_scale_partition_equivalence(benchmark):
    config = _config()
    serial = run_scale(config, partitions=1)

    partitioned = run_once(
        benchmark, lambda: run_scale(config, partitions=_partitions())
    )

    write_output(
        "scale_partitioned",
        render_scenario_figure("scale", ScaleResult(config=config, run=partitioned)),
    )

    # The acceptance property: partitioning is a wall-clock knob, never a
    # results knob.  Bit-identical fingerprints, same pod shares, same
    # aggregate outcome counts.
    assert partitioned.fingerprint() == serial.fingerprint()
    assert partitioned.completed == serial.completed
    assert partitioned.failed == serial.failed
    assert partitioned.completed + partitioned.failed == config.num_queries
    assert sorted(partitioned.pod_summaries) == list(range(config.pods))
    for pod, summary in partitioned.pod_summaries.items():
        assert summary["queries"] > 0, f"pod {pod} received no queries"
        assert summary["events_executed"] > 0
