"""Figure 7 — Wikipedia replay: deciles 1–9 of wiki-page load time per bin.

Paper: "Wikipedia replay: decile 1..9 of load time for wiki pages over
24 hours (10 mins bins).  RR vs SR4 policy."  SR4 shows less variability
(a tighter decile band) under the higher-load parts of the day.
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_once, write_output
from benchmarks.wikipedia_shared import replay_result
from repro.experiments import figures


def _band_width(decile_row):
    """Width of the decile band (d9 - d1) for one bin."""
    d1, d9 = decile_row[0], decile_row[8]
    if math.isnan(d1) or math.isnan(d9):
        return float("nan")
    return d9 - d1


def bench_figure7_wikipedia_deciles(benchmark):
    result = run_once(benchmark, replay_result)

    rr_table = figures.render_figure7(result, "RR")
    sr4_table = figures.render_figure7(result, "SR4")
    write_output("figure7_wikipedia_deciles", rr_table + "\n\n" + sr4_table)

    series = figures.figure7_series(result)
    rr_widths = [_band_width(deciles) for _, deciles in series["RR"]]
    sr4_widths = [_band_width(deciles) for _, deciles in series["SR4"]]
    rr_widths = [width for width in rr_widths if not math.isnan(width)]
    sr4_widths = [width for width in sr4_widths if not math.isnan(width)]

    # Shape check: averaged over the day, SR4's decile band is tighter
    # than RR's (less response-time variability under load).
    assert sum(sr4_widths) / len(sr4_widths) < sum(rr_widths) / len(rr_widths)
