"""Ablation A2 — SRdyn window size and watermarks.

Algorithm 2 adapts the threshold every 50 optional decisions, moving it
when the window acceptance ratio leaves the [0.4, 0.6] band.  This
ablation varies the window size (and, implicitly, how quickly the policy
can react) at heavy load, to show that the paper's default is not a
knife-edge choice: a wide range of windows tracks the best static
policy.
"""

from __future__ import annotations

from benchmarks.conftest import scale_queries, run_once, write_output
from repro.core.policies import DynamicThresholdPolicy, register_policy
from repro.experiments.config import HIGH_LOAD_FACTOR, PolicySpec, TestbedConfig, sr_policy
from repro.experiments.poisson_experiment import run_poisson_once
from repro.metrics.reporting import format_table

WINDOW_SIZES = (10, 25, 50, 100, 200)


def _register_window_policies():
    for window in WINDOW_SIZES:
        register_policy(
            f"SRdyn-w{window}",
            lambda window=window: DynamicThresholdPolicy(window_size=window),
        )


def bench_ablation_dynamic_window(benchmark):
    _register_window_policies()
    config = TestbedConfig()
    queries = scale_queries()

    def run_all():
        results = {
            "SR4 (static reference)": run_poisson_once(
                config, sr_policy(4), load_factor=HIGH_LOAD_FACTOR, num_queries=queries
            )
        }
        for window in WINDOW_SIZES:
            spec = PolicySpec(
                name=f"SRdyn w={window}",
                acceptance_policy=f"SRdyn-w{window}",
                num_candidates=2,
            )
            results[spec.name] = run_poisson_once(
                config, spec, load_factor=HIGH_LOAD_FACTOR, num_queries=queries
            )
        return results

    runs = run_once(benchmark, run_all)

    reference = runs["SR4 (static reference)"].mean_response_time
    rows = [
        [name, run.mean_response_time, run.mean_response_time / reference]
        for name, run in runs.items()
    ]
    table = format_table(
        ["policy", "mean response (s)", "vs best static"],
        rows,
        title="Ablation A2: SRdyn window size at rho=0.88",
    )
    write_output("ablation_dyn_window", table)

    # Shape check: every window in the sweep stays within 2x of the best
    # static policy (SRdyn is robust to the window-size choice).
    for window in WINDOW_SIZES:
        assert runs[f"SRdyn w={window}"].mean_response_time < 2.0 * reference
