"""Adversarial scenario — legitimate service under attack and gray failure.

Beyond the paper: the same legitimate Poisson workload is replayed while
something hostile happens mid-run — a spoofed-source SYN flood, the same
flood concentrated onto one ECMP bucket by an offline hash-collision
search, or a gray failure (a degraded-but-alive server) handled by the
quarantine watchdog.  The benchmark reports what the legitimate flows
experienced in each mode next to the attack-side counters.

Scale knobs: ``REPRO_BENCH_ADV_QUERIES`` sets the legitimate query count
(default 1500); ``REPRO_BENCH_JOBS`` fans the per-mode replays out over
a pool.
"""

from __future__ import annotations

import os

from benchmarks.conftest import run_once, scale_jobs, write_output
from repro.experiments.adversarial_experiment import run_adversarial
from repro.experiments.config import AdversarialConfig
from repro.experiments.figures import render_scenario_figure


def _queries() -> int:
    return int(os.environ.get("REPRO_BENCH_ADV_QUERIES", 1_500))


def bench_adversarial_modes(benchmark):
    config = AdversarialConfig().scaled(_queries())

    result = run_once(benchmark, lambda: run_adversarial(config, jobs=scale_jobs()))

    write_output("adversarial_modes", render_scenario_figure("adversarial", result))

    # Reproduction checks (shape, not absolute values).
    baseline = result.run("baseline")
    assert baseline.completion_rate == 1.0
    assert baseline.attack_syns_sent == 0
    # The floods really ran and hurt, but did not extinguish service.
    for mode in ("syn-flood", "hash-collision"):
        run = result.run(mode)
        assert run.attack_syns_sent > 0
        assert 0.2 <= run.completion_rate <= 1.0
        assert run.connections_timed_out > 0
    # The collision search concentrated the flood onto one bucket.
    collision = result.run("hash-collision")
    assert collision.attack_bucket_share is not None
    assert collision.attack_bucket_share >= 0.9
    # The gray failure was detected and drained without losing queries.
    gray = result.run("gray-failure")
    assert gray.completion_rate == 1.0
    assert gray.quarantined == ("server-0",)
    assert gray.quarantine_delay is not None and gray.quarantine_delay > 0
