"""Figure 3 — CDF of page load time at ρ = 0.88 (heavy load).

Paper: "CDF of page load time over 20000 queries for the Poisson
workload: RR vs different SRc policies, ρ = 0.88."  RR shows a dispersed
distribution; the SRc policies yield lower and less dispersed response
times.
"""

from __future__ import annotations

from benchmarks.conftest import scale_queries, run_once, write_output
from repro.experiments import figures
from repro.experiments.config import HIGH_LOAD_FACTOR, TestbedConfig, paper_policy_suite
from repro.experiments.poisson_experiment import run_poisson_once
from repro.metrics.stats import percentile


def bench_figure3_cdf_heavy_load(benchmark):
    config = TestbedConfig()
    queries = scale_queries()

    def run_all():
        return {
            spec.name: run_poisson_once(
                config, spec, load_factor=HIGH_LOAD_FACTOR, num_queries=queries
            )
            for spec in paper_policy_suite()
        }

    runs = run_once(benchmark, run_all)

    table = figures.render_figure_cdf(
        runs, title=f"Figure 3: CDF of page load time, rho={HIGH_LOAD_FACTOR}"
    )
    write_output("figure3_cdf_high_load", table)

    # Shape checks: the SR4 distribution is stochastically smaller than
    # RR's at heavy load — its median and 90th percentile are lower.
    rr_times = runs["RR"].response_times()
    sr4_times = runs["SR4"].response_times()
    assert percentile(sr4_times, 50) < percentile(rr_times, 50)
    assert percentile(sr4_times, 90) < percentile(rr_times, 90)
