"""Figure 8 — Wikipedia replay: whole-day CDF of wiki-page load times.

Paper: "Wikipedia replay: CDF of wiki page load time over 24 hours.  RR
vs SR4 policy."  The paper reports the median going from 0.25 s (RR) to
0.20 s (SR4) and the third quartile from 0.48 s to 0.28 s — i.e. the
tail improves more than the median.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, write_output
from benchmarks.wikipedia_shared import replay_result
from repro.experiments import figures


def bench_figure8_wikipedia_cdf(benchmark):
    result = run_once(benchmark, replay_result)

    table = figures.render_figure8(result)
    write_output("figure8_wikipedia_cdf", table)

    rr_q1, rr_median, rr_q3 = result.run("RR").wiki_quartiles()
    sr4_q1, sr4_median, sr4_q3 = result.run("SR4").wiki_quartiles()

    # Shape checks: SR4's whole-day distribution is no worse at the
    # median and clearly better at the third quartile, and the relative
    # improvement at the third quartile exceeds the one at the median
    # (the "steeper tail" observation of the paper).
    assert sr4_median <= rr_median * 1.05
    assert sr4_q3 < rr_q3
    assert (rr_q3 / sr4_q3) > (rr_median / sr4_median) * 0.99
