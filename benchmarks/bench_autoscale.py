"""Autoscale scenario — elastic control plane vs static over-provisioning.

Beyond the paper: a diurnal (sinusoid-plus-noise) arrival schedule is
replayed under a peak-sized static fleet and under the reactive and
predictive autoscalers of :mod:`repro.control`, and the benchmark
reports capacity-seconds (cost) against p99 response time (SLO).  The
expectation is the one elasticity exists to deliver: the scaled fleets
pay for materially less capacity while staying inside the SLO.

Scale knobs: ``REPRO_BENCH_TIME_FACTOR`` compresses the day and every
control-plane clock (default 0.5); ``REPRO_BENCH_JOBS`` fans the
per-mode replays out over a pool.
"""

from __future__ import annotations

import os

from benchmarks.conftest import run_once, scale_jobs, write_output
from repro.experiments.autoscale_experiment import run_autoscale
from repro.experiments.config import AutoscaleConfig
from repro.experiments.figures import render_scenario_figure


def _time_factor() -> float:
    return float(os.environ.get("REPRO_BENCH_TIME_FACTOR", 0.5))


def bench_autoscale_diurnal(benchmark):
    config = AutoscaleConfig().scaled(_time_factor())

    result = run_once(benchmark, lambda: run_autoscale(config, jobs=scale_jobs()))

    write_output("autoscale_diurnal", render_scenario_figure("autoscale", result))

    # Reproduction checks (shape, not absolute values): every mode keeps
    # serving, and the elastic fleets spend less than the static one.
    static = result.run("static")
    for mode in result.keys():
        run = result.run(mode)
        assert run.requests_served > 0
        assert run.capacity_seconds > 0
    for mode in ("reactive", "predictive"):
        run = result.run(mode)
        assert run.capacity_seconds < static.capacity_seconds
        assert run.capacity.scale_ups() > 0
