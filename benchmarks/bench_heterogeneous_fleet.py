"""Heterogeneous-fleet scenario — SR fairness across speed tiers.

Beyond the paper: the fleet mixes fast and slow CPU tiers and the
benchmark reports, per policy, response times plus each tier's share of
accepted queries relative to the capacity it brings (1.0 = perfectly
capacity-proportional) and Jain's fairness index over per-capacity
acceptance.  Expectation: RR, blind to server state, feeds both tiers
uniformly and overloads the slow one; Service Hunting's busy-thread
refusals push the excess toward the fast tier, landing closer to
capacity-proportional and with lower response times.

Scale knobs: ``REPRO_BENCH_QUERIES`` (queries per run) and
``REPRO_BENCH_JOBS`` (worker processes) as for the other benchmarks.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, scale_jobs, scale_queries, write_output
from repro.experiments.config import HeterogeneousFleetConfig
from repro.experiments.figures import render_scenario_figure
from repro.experiments.heterogeneous_experiment import (
    capacity_fairness_index,
    run_heterogeneous_fleet,
)


def bench_heterogeneous_fleet_fairness(benchmark):
    config = HeterogeneousFleetConfig().scaled(scale_queries())

    result = run_once(
        benchmark, lambda: run_heterogeneous_fleet(config, jobs=scale_jobs())
    )

    write_output(
        "heterogeneous_fleet_fairness",
        render_scenario_figure("heterogeneous-fleet", result),
    )

    # Reproduction checks (shape, not absolute values): Service Hunting
    # both spreads per-capacity load more fairly than RR and serves the
    # mixed fleet faster.
    (rho,) = config.load_factors
    rr = result.run(("RR", rho))
    sr4 = result.run(("SR4", rho))
    assert capacity_fairness_index(config, sr4.acceptance_counts) > (
        capacity_fairness_index(config, rr.acceptance_counts)
    )
    assert sr4.mean_response_time < rr.mean_response_time
