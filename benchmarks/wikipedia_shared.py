"""Shared Wikipedia-replay run for the Figure 6/7/8 benchmarks.

The three Wikipedia figures are different views of the *same* replay
(per-bin medians, per-bin deciles, whole-day CDF), so the replay is run
once and cached at module scope; the first benchmark that needs it pays
the cost, the others reuse the result and only measure their series
extraction.  Setting ``REPRO_BENCH_WIKI_DURATION`` rescales the
compressed day for all three.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache

from benchmarks.conftest import scale_wiki_duration
from repro.experiments.config import WikipediaReplayConfig
from repro.experiments.wikipedia_experiment import (
    WikipediaReplay,
    WikipediaReplayResult,
    make_wikipedia_trace,
)


@lru_cache(maxsize=1)
def replay_config() -> WikipediaReplayConfig:
    """The benchmark-scale replay configuration (compressed day)."""
    base = dataclasses.replace(WikipediaReplayConfig(), static_per_wiki=0.5)
    return base.compressed(duration=scale_wiki_duration())


@lru_cache(maxsize=1)
def replay_result() -> WikipediaReplayResult:
    """Run the replay once (RR and SR4) and cache the result."""
    config = replay_config()
    trace = make_wikipedia_trace(config)
    return WikipediaReplay(config).run(trace=trace)
