"""Heavy-tailed session scenario — policy robustness under unkind load.

Beyond the paper: the workload mixes bounded-Pareto one-shots with
keep-alive user sessions (one aggregated request per session) attributed
to a Zipf user population, and the client pins a returning user's
5-tuple via a stable source port.  The expectation is directional, as in
the stationary case: the power of two choices keeps queues shorter than
blind round-robin even when demands are heavy-tailed, so the SR policies'
mean response stays at or below the RR baseline.

Scale knobs: ``REPRO_BENCH_ARRIVALS`` sets the arrival count (default
1500); ``REPRO_BENCH_JOBS`` fans the per-policy replays out over a pool.
"""

from __future__ import annotations

import os

from benchmarks.conftest import run_once, scale_jobs, write_output
from repro.experiments.config import HeavyTailConfig
from repro.experiments.figures import render_scenario_figure
from repro.experiments.heavy_tail_experiment import run_heavy_tail


def _arrivals() -> int:
    return int(os.environ.get("REPRO_BENCH_ARRIVALS", 1_500))


def bench_heavy_tail_sessions(benchmark):
    config = HeavyTailConfig().scaled(_arrivals())

    result = run_once(benchmark, lambda: run_heavy_tail(config, jobs=scale_jobs()))

    write_output("heavy_tail_sessions", render_scenario_figure("heavy-tail", result))

    # Reproduction checks (shape, not absolute values): the trace is
    # genuinely skewed, every policy served the whole trace, and two
    # choices do not lose to one under heavy tails.
    users = result.users
    assert users.num_requests == config.num_arrivals
    assert users.top_user_share > 1.0 / users.distinct_users
    rr = result.run("RR")
    sr4 = result.run("SR4")
    for name in result.policies():
        run = result.run(name)
        assert run.collector.totals.completed > 0.95 * config.num_arrivals
    assert sr4.summary.mean < rr.summary.mean * 1.05
