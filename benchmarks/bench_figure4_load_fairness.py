"""Figure 4 — instantaneous server load (mean and fairness), RR vs SR4.

Paper: "Instantaneous server load for a run of 20000 queries of the
Poisson workload (mean and fairness over the 12 servers): RR vs SR4
policy, ρ = 0.88", smoothed with an EWMA filter of parameter
α = 1 − exp(−δt).  SR4 keeps the fairness index closer to 1 and the
servers individually less loaded.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import scale_queries, run_once, write_output
from repro.experiments import figures
from repro.experiments.config import (
    HIGH_LOAD_FACTOR,
    TestbedConfig,
    rr_policy,
    sr_policy,
)
from repro.experiments.poisson_experiment import run_poisson_once


def bench_figure4_load_and_fairness(benchmark):
    config = TestbedConfig()
    queries = scale_queries()

    def run_both():
        return {
            spec.name: run_poisson_once(
                config,
                spec,
                load_factor=HIGH_LOAD_FACTOR,
                num_queries=queries,
                sample_load=True,
                load_sample_interval=0.5,
            )
            for spec in (rr_policy(), sr_policy(4))
        }

    runs = run_once(benchmark, run_both)

    table = figures.render_figure4(runs, num_rows=24)
    series = figures.figure4_series(runs)
    rr_fairness = np.nanmean([value for _, value in series["RR"].fairness])
    sr4_fairness = np.nanmean([value for _, value in series["SR4"].fairness])
    rr_load = np.nanmean([value for _, value in series["RR"].mean_load])
    sr4_load = np.nanmean([value for _, value in series["SR4"].mean_load])
    summary = (
        f"time-averaged fairness index: RR={rr_fairness:.3f}, SR4={sr4_fairness:.3f}\n"
        f"time-averaged mean busy threads: RR={rr_load:.2f}, SR4={sr4_load:.2f}"
    )
    write_output("figure4_load_fairness", table + "\n\n" + summary)

    # Shape checks: SR4 spreads the load better (higher fairness) and
    # keeps servers less backed up (lower mean busy-thread count).
    assert sr4_fairness > rr_fairness
    assert sr4_load < rr_load
