"""Shared configuration and helpers for the reproduction benchmarks.

Every benchmark regenerates one figure of the paper (or an ablation) at a
reduced-but-same-shape scale, prints the resulting series as a text
table, and writes the same table under ``benchmarks/output/`` so that
EXPERIMENTS.md can reference the measured numbers.

Scale knobs (environment variables):

* ``REPRO_BENCH_QUERIES`` — queries per Poisson run (default 2000; the
  paper uses 20000).
* ``REPRO_BENCH_RHO_POINTS`` — number of load factors swept by the
  Figure 2 benchmark (default 4; the paper uses 24).
* ``REPRO_BENCH_WIKI_DURATION`` — compressed duration, in seconds, of the
  synthetic Wikipedia day (default 480; the paper replays 86400).
* ``REPRO_BENCH_JOBS`` — worker processes for independent runs within a
  sweep (default 1 = in-process; 0 = all cores).  Results are identical
  for any value (see ``repro.experiments.runner``), so this is purely a
  wall-clock knob.

Setting these to the paper-scale values reproduces the full evaluation;
the defaults keep the whole benchmark suite in the ten-minute range.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Directory where rendered figure tables are written.
OUTPUT_DIR = Path(__file__).parent / "output"

#: Reduced default scales (see module docstring).
DEFAULT_QUERIES = 2_000
DEFAULT_RHO_POINTS = 4
DEFAULT_WIKI_DURATION = 480.0
DEFAULT_JOBS = 1


def scale_queries() -> int:
    """Queries per Poisson run for the benchmark suite."""
    return int(os.environ.get("REPRO_BENCH_QUERIES", DEFAULT_QUERIES))


def scale_rho_points() -> int:
    """Number of load factors swept by the Figure 2 benchmark."""
    return int(os.environ.get("REPRO_BENCH_RHO_POINTS", DEFAULT_RHO_POINTS))


def scale_wiki_duration() -> float:
    """Compressed duration of the synthetic Wikipedia day, in seconds."""
    return float(os.environ.get("REPRO_BENCH_WIKI_DURATION", DEFAULT_WIKI_DURATION))


def scale_jobs() -> int:
    """Worker processes for independent runs within a sweep."""
    return int(os.environ.get("REPRO_BENCH_JOBS", DEFAULT_JOBS))


def write_output(name: str, text: str) -> None:
    """Print a rendered figure and persist it under ``benchmarks/output/``."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")


@pytest.fixture(scope="session")
def output_writer():
    """Fixture exposing :func:`write_output` to the benchmarks."""
    return write_output


def run_once(benchmark, function):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiments are far too expensive for statistical repetition; a
    single timed round per figure keeps the harness honest about cost
    while still producing a benchmark table.
    """
    return benchmark.pedantic(function, rounds=1, iterations=1)
