"""Hot-path perf benchmark: events/sec on three representative cells.

Unlike the figure benchmarks, this file measures *simulator throughput*,
not experiment outputs.  Three fixed-seed cells cover the hot paths the
engine and packet layers are optimised for:

* ``poisson-high-load`` — a ρ=0.9 Poisson cell on the paper's testbed:
  the steady-state packet/event churn every experiment is built from
  (this is the cell the ≥1.4× PR acceptance criterion is measured on);
* ``wikipedia-slice`` — a compressed slice of the synthetic Wikipedia
  day: mixed wiki/static requests, diurnal rates, long replay;
* ``resilience-churn`` — an ECMP tier with spread uploads and a
  mid-run instance kill: SRH relays, recovery hunts and timer churn.
* ``scale-partitioned`` — one partitioned run of the ``scale`` family
  (4 ECMP pods, 4 worker processes): the intra-run parallel path.  Its
  timed section is the whole coordinated run (workers build their own
  testbeds, so construction cannot be hoisted out); on a machine with
  >= 4 free cores the per-pod replays overlap and aggregate events/sec
  exceeds the serial cells' — the ``busy/wall`` ratio printed by the
  scenario is the cores-of-useful-work signal (see docs/performance.md).
* ``telemetry-overhead`` — the ``poisson-high-load`` workload rerun with
  the streaming telemetry probe attached; its events/sec relative to
  ``poisson-high-load`` is the sampling plane's measured overhead.

For the first three cells the timed section is ``Testbed.run_trace``
only; trace generation and testbed construction happen outside the
timer (see :mod:`repro.bench`).

Run it via ``make perf`` (full profile, writes the ``latest`` slot of
``BENCH_PERF.json``) or ``make perf-smoke`` (reduced profile, compares
against the committed ``baseline`` slot with a generous tolerance — the
CI regression gate).  ``--write baseline`` / ``--write pre_pr`` pin the
current numbers as the reference records.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict

import numpy as np

from repro.bench import (
    CellMeasurement,
    PerfCell,
    PerfReport,
    compare_to_baseline,
    format_report,
    time_cell,
)
from repro.experiments.calibration import analytic_saturation_rate
from repro.experiments.config import (
    ResilienceConfig,
    ScaleConfig,
    TestbedConfig,
    WikipediaReplayConfig,
    sr_policy,
)
from repro.experiments.platform import Testbed, build_testbed
from repro.experiments.resilience_experiment import make_resilience_trace
from repro.experiments.scale_experiment import run_scale
from repro.experiments.wikipedia_experiment import make_wikipedia_trace
from repro.workload.poisson import PoissonWorkload
from repro.workload.service_models import ExponentialServiceTime
from repro.workload.trace import Trace

#: The committed perf trajectory (repo root).
REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_PERF.json"

METHODOLOGY = (
    "Each cell replays a fixed-seed trace on a fresh testbed; the timed "
    "section is Testbed.run_trace only (trace generation and testbed "
    "construction are excluded). Exception: scale-partitioned times the "
    "whole partitioned run (workers build their own testbeds), counts "
    "events across every partition simulator, and runs 4 worker "
    "processes -- its events_per_sec scales with free cores, so for that "
    "cell pre_pr records the same workload at partitions=1 (the serial "
    "execution path) on the same machine. "
    "events_per_sec = Simulator.events_executed "
    "/ wall-clock seconds of the timed section, best of --repeats runs. "
    "Slots: pre_pr = the last numbers measured on the code before a "
    "hot-path PR (same harness, same machine as its baseline), baseline = "
    "the committed reference the CI perf-smoke job checks against "
    "(tolerance 30%, because CI machines vary), latest = the most recent "
    "`make perf` on whatever machine ran it. Absolute numbers are only "
    "comparable within one machine; ratios are the portable signal."
)

#: Per-profile workload sizes, chosen so smoke finishes well under two
#: minutes and full stays in the single-digit-minute range.
PROFILES = {
    "full": {
        "poisson_queries": 30_000,
        "wiki_duration": 480.0,
        "resilience_queries": 8_000,
        "scale_queries": 1_000_000,
    },
    "smoke": {
        "poisson_queries": 6_000,
        "wiki_duration": 120.0,
        "resilience_queries": 2_000,
        "scale_queries": 20_000,
    },
}

#: Worker processes of the ``scale-partitioned`` cell.  Fixed (not
#: ``os.cpu_count()``) so the measured workload is identical across
#: machines; results are bit-identical for any value regardless.
SCALE_PARTITIONS = 4


def _timed_replay(testbed: Testbed, trace: Trace):
    """The timed body shared by all cells: replay and report counters."""

    def body():
        testbed.run_trace(trace)
        return (
            testbed.simulator.events_executed,
            testbed.simulator.now,
            len(testbed.collector),
        )

    return body


# The replay cells measure the shipped-fast pure-Python configuration:
# packet pooling on.  Pooled runs execute the identical event sequence
# (the golden-fingerprint tests pin pooled == unpooled bit-for-bit), so
# events/sec stays comparable with earlier unpooled records — the pool
# only changes allocation behaviour, never the workload.
def _poisson_high_load_cell(num_queries: int) -> PerfCell:
    testbed_config = TestbedConfig(seed=7, packet_pooling=True)
    service_mean = 0.1

    def prepare():
        workload = PoissonWorkload.from_load_factor(
            rho=0.9,
            saturation_rate=analytic_saturation_rate(testbed_config, service_mean),
            num_queries=num_queries,
            service_model=ExponentialServiceTime(service_mean),
        )
        trace = workload.generate(np.random.default_rng(424_242))
        testbed = build_testbed(testbed_config, sr_policy(4), run_name="perf-poisson")
        return _timed_replay(testbed, trace)

    return PerfCell(
        name="poisson-high-load",
        description=f"rho=0.9 Poisson, {num_queries} queries, SR4, 12 servers",
        prepare=prepare,
    )


def _wikipedia_slice_cell(duration: float) -> PerfCell:
    config = WikipediaReplayConfig(
        testbed=TestbedConfig(seed=7, packet_pooling=True)
    ).compressed(duration=duration)

    def prepare():
        trace = make_wikipedia_trace(config)
        testbed = build_testbed(config.testbed, sr_policy(4), run_name="perf-wiki")
        return _timed_replay(testbed, trace)

    return PerfCell(
        name="wikipedia-slice",
        description=f"synthetic Wikipedia day compressed to {duration:g}s, SR4",
        prepare=prepare,
    )


def _resilience_churn_cell(num_queries: int) -> PerfCell:
    config = ResilienceConfig(
        testbed=TestbedConfig(
            seed=7,
            num_load_balancers=4,
            request_spread=2.0,
            request_chunks=5,
            request_timeout=5.0,
            packet_pooling=True,
        )
    ).scaled(num_queries)
    scheme = "consistent-hash"

    def prepare():
        trace = make_resilience_trace(config)
        testbed = build_testbed(
            config.testbed, config.policy_for(scheme), run_name="perf-resilience"
        )
        tier = testbed.lb_tier
        assert tier is not None

        def kill_busiest() -> None:
            victim = max(tier.alive_instances(), key=lambda lb: len(lb.flow_table))
            tier.kill_instance(victim.name)

        testbed.simulator.schedule_at(
            trace.duration * 0.5, kill_busiest, label="perf-churn-kill"
        )
        return _timed_replay(testbed, trace)

    return PerfCell(
        name="resilience-churn",
        description=(
            f"4-instance ECMP tier, {num_queries} spread-upload queries, "
            f"{scheme}, one mid-run kill"
        ),
        prepare=prepare,
    )


def _telemetry_overhead_cell(num_queries: int) -> PerfCell:
    # Identical workload, seed and testbed to ``poisson-high-load``, but
    # with the streaming telemetry probe attached: the ratio between the
    # two cells' events/sec is the sampling plane's measured cost.  The
    # timed body includes the probe's periodic samples and the final
    # publish, exactly what a ``--telemetry`` run pays.
    testbed_config = TestbedConfig(seed=7, packet_pooling=True)
    service_mean = 0.1

    def prepare():
        from repro.telemetry import runtime as telemetry_runtime

        workload = PoissonWorkload.from_load_factor(
            rho=0.9,
            saturation_rate=analytic_saturation_rate(testbed_config, service_mean),
            num_queries=num_queries,
            service_model=ExponentialServiceTime(service_mean),
        )
        trace = workload.generate(np.random.default_rng(424_242))
        telemetry_runtime.enable()
        try:
            testbed = build_testbed(
                testbed_config, sr_policy(4), run_name="perf-telemetry"
            )
        finally:
            telemetry_runtime.disable()
        assert testbed.telemetry is not None and testbed.telemetry.active
        return _timed_replay(testbed, trace)

    return PerfCell(
        name="telemetry-overhead",
        description=(
            f"the poisson-high-load workload ({num_queries} queries) with "
            "the telemetry probe sampling every tier"
        ),
        prepare=prepare,
    )


def _scale_partitioned_cell(num_queries: int) -> PerfCell:
    config = ScaleConfig(num_queries=num_queries)

    def prepare():
        def body():
            result = run_scale(config, partitions=SCALE_PARTITIONS)
            simulated = max(
                (
                    summary.get("simulated_seconds", 0.0)
                    for summary in result.pod_summaries.values()
                ),
                default=0.0,
            )
            return result.events_executed, simulated, result.completed

        return body

    return PerfCell(
        name="scale-partitioned",
        description=(
            f"{num_queries} queries over {config.pods} ECMP pods, "
            f"{SCALE_PARTITIONS} partition processes (whole run timed)"
        ),
        prepare=prepare,
    )


def profile_cells(profile: str):
    """The perf cells at one profile's scale."""
    sizes = PROFILES[profile]
    return (
        _poisson_high_load_cell(sizes["poisson_queries"]),
        _wikipedia_slice_cell(sizes["wiki_duration"]),
        _resilience_churn_cell(sizes["resilience_queries"]),
        _scale_partitioned_cell(sizes["scale_queries"]),
        _telemetry_overhead_cell(sizes["poisson_queries"]),
    )


#: Cell names accepted by ``--cell`` (profile-independent).
CELL_NAMES = tuple(cell.name for cell in profile_cells("smoke"))


def run_profile(
    profile: str, repeats: int = 1, cells=None
) -> Dict[str, CellMeasurement]:
    """Measure every cell of one profile (or the ``cells`` subset)."""
    measurements: Dict[str, CellMeasurement] = {}
    for cell in profile_cells(profile):
        if cells is not None and cell.name not in cells:
            continue
        print(f"[{profile}] {cell.name}: {cell.description} ...", flush=True)
        measurements[cell.name] = time_cell(cell, repeats=repeats)
    return measurements


def cprofile_cells(profile: str, cells, out_dir: Path) -> None:
    """Run cells under cProfile; write top-25 cumulative listings.

    One ``<cell>-<profile>.txt`` per cell under ``out_dir`` (what
    ``make profile`` produces), also echoed to stdout.  Profiling skews
    absolute timings, so nothing is recorded in BENCH_PERF.json.
    """
    import cProfile
    import io
    import pstats

    out_dir.mkdir(parents=True, exist_ok=True)
    for cell in profile_cells(profile):
        if cells is not None and cell.name not in cells:
            continue
        print(f"[{profile}] profiling {cell.name}: {cell.description} ...", flush=True)
        body = cell.prepare()
        profiler = cProfile.Profile()
        profiler.enable()
        body()
        profiler.disable()
        stream = io.StringIO()
        pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(25)
        listing = stream.getvalue()
        path = out_dir / f"{cell.name}-{profile}.txt"
        path.write_text(listing)
        print(listing)
        print(f"wrote {path}")


def bench_perf_hotpath_smoke() -> None:
    """`make bench` entry point: the smoke profile must complete sanely.

    No timing assertion here — shared CI runners are too noisy for a
    hard gate inside the functional benchmark suite; the perf-smoke CI
    job owns the (tolerant) regression check.
    """
    measurements = run_profile("smoke")
    print(format_report(measurements))
    for measurement in measurements.values():
        assert measurement.queries > 0
        assert measurement.events > measurement.queries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", choices=sorted(PROFILES), default="full")
    parser.add_argument(
        "--repeats", type=int, default=1, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when a cell is slower than (1 - tolerance) x baseline",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed events/sec regression vs the baseline slot (default 0.30)",
    )
    parser.add_argument(
        "--write",
        choices=("pre_pr", "baseline"),
        help="additionally pin the measured numbers as this reference slot",
    )
    parser.add_argument(
        "--report", type=Path, default=REPORT_PATH, help="BENCH_PERF.json path"
    )
    parser.add_argument(
        "--no-save", action="store_true", help="measure and print only"
    )
    parser.add_argument(
        "--cell",
        action="append",
        dest="cells",
        choices=CELL_NAMES,
        help="restrict to this cell (repeatable; default: all cells)",
    )
    parser.add_argument(
        "--cprofile",
        type=Path,
        metavar="DIR",
        help=(
            "run the selected cells under cProfile and write top-25 "
            "cumulative listings under DIR instead of timing them"
        ),
    )
    args = parser.parse_args(argv)

    if args.cprofile is not None:
        cprofile_cells(args.profile, args.cells, args.cprofile)
        return 0

    report = PerfReport.load(args.report)
    report.methodology = METHODOLOGY
    measurements = run_profile(args.profile, repeats=args.repeats, cells=args.cells)

    print()
    print(
        format_report(
            measurements,
            pre_pr=report.records(args.profile, "pre_pr"),
            baseline=report.records(args.profile, "baseline"),
        )
    )

    failed = False
    if args.check:
        rows = compare_to_baseline(
            measurements, report.records(args.profile, "baseline"), args.tolerance
        )
        if not rows:
            print("\nno committed baseline for this profile; nothing to check")
        for row in rows:
            status = "ok" if row.ok else "REGRESSION"
            print(
                f"check {row.cell}: {row.current:,.0f} vs baseline "
                f"{row.reference:,.0f} events/s ({row.ratio:.2f}x) -> {status}"
            )
            failed = failed or not row.ok

    if not args.no_save:
        report.store(args.profile, "latest", measurements)
        if args.write:
            report.store(args.profile, args.write, measurements)
        report.save(args.report)
        print(f"\nwrote {args.report}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
