"""Flash-crowd scenario — overload absorption per policy.

Beyond the paper: the Poisson workload's rate jumps from a baseline
below saturation to a spike *above* it and back, and the benchmark
reports per-phase response times per policy.  The expectation mirrors
the paper's stationary result: the power of two choices keeps queues
shorter when the crowd hits, so the SR policies absorb the spike and
drain back faster than the RR baseline.

Scale knobs: ``REPRO_BENCH_TIME_FACTOR`` multiplies every phase
duration (default 0.5 — half the scenario's default schedule);
``REPRO_BENCH_JOBS`` fans the per-policy replays out over a pool.
"""

from __future__ import annotations

import os

from benchmarks.conftest import run_once, scale_jobs, write_output
from repro.experiments.config import FlashCrowdConfig
from repro.experiments.figures import render_scenario_figure
from repro.experiments.flash_crowd_experiment import run_flash_crowd


def _time_factor() -> float:
    return float(os.environ.get("REPRO_BENCH_TIME_FACTOR", 0.5))


def bench_flash_crowd_overload(benchmark):
    config = FlashCrowdConfig().scaled(_time_factor())

    result = run_once(benchmark, lambda: run_flash_crowd(config, jobs=scale_jobs()))

    write_output("flash_crowd_overload", render_scenario_figure("flash-crowd", result))

    # Reproduction checks (shape, not absolute values): the spike is a
    # real overload for every policy, and two choices beat one while the
    # crowd lasts.
    rr_spike = result.run("RR").phase_summary("spike")
    sr4_spike = result.run("SR4").phase_summary("spike")
    assert rr_spike is not None and sr4_spike is not None
    for name in result.keys():
        run = result.run(name)
        baseline = run.phase_summary("baseline")
        spike = run.phase_summary("spike")
        assert baseline is not None and spike is not None
        assert spike.mean > baseline.mean
    assert sr4_spike.mean < rr_spike.mean * 1.05
