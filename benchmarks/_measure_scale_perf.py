"""One-off driver: measure both profiles and pin the scale cell's slots.

Refreshes the `latest` slot of every cell (what `make perf` does), and
for the new `scale-partitioned` cell also pins `baseline` (the
partitioned run) and `pre_pr` (the same workload at partitions=1 — the
serial execution path, see METHODOLOGY).  Existing cells' committed
pre_pr/baseline slots are left untouched.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.bench_perf_hotpath import (
    METHODOLOGY,
    PROFILES,
    REPORT_PATH,
    run_profile,
)
from repro.bench import PerfCell, PerfReport, time_cell
from repro.experiments.config import ScaleConfig
from repro.experiments.scale_experiment import run_scale


def _serial_scale_cell(num_queries: int) -> PerfCell:
    config = ScaleConfig(num_queries=num_queries)

    def prepare():
        def body():
            result = run_scale(config, partitions=1)
            simulated = max(
                (
                    summary.get("simulated_seconds", 0.0)
                    for summary in result.pod_summaries.values()
                ),
                default=0.0,
            )
            return result.events_executed, simulated, result.completed

        return body

    return PerfCell(
        name="scale-partitioned",
        description=f"{num_queries} queries, partitions=1 (serial reference)",
        prepare=prepare,
    )


def main() -> int:
    report = PerfReport.load(REPORT_PATH)
    report.methodology = METHODOLOGY
    for profile in ("smoke", "full"):
        measurements = run_profile(profile)
        report.store(profile, "latest", measurements)
        report.store(
            profile,
            "baseline",
            {"scale-partitioned": measurements["scale-partitioned"]},
        )
        serial_cell = _serial_scale_cell(PROFILES[profile]["scale_queries"])
        print(f"[{profile}] {serial_cell.name}: {serial_cell.description} ...",
              flush=True)
        serial = time_cell(serial_cell)
        report.store(profile, "pre_pr", {"scale-partitioned": serial})
        print(
            f"[{profile}] serial {serial.events_per_sec:,.0f} ev/s vs "
            f"partitioned "
            f"{measurements['scale-partitioned'].events_per_sec:,.0f} ev/s",
            flush=True,
        )
    report.save(REPORT_PATH)
    print(f"wrote {REPORT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
