"""Ablation A5 — CPU scheduling model of the server substrate.

DESIGN.md models each 2-core VM as a processor-sharing CPU (the OS
time-slices the Apache workers).  This ablation reruns the heavy-load
comparison with the run-to-completion (FIFO) model instead, to show that
the paper's qualitative conclusion — SR4 beats RR — does not depend on
that substrate choice, even though absolute response times differ.
"""

from __future__ import annotations

import dataclasses

from benchmarks.conftest import scale_queries, run_once, write_output
from repro.experiments.config import HIGH_LOAD_FACTOR, TestbedConfig, rr_policy, sr_policy
from repro.experiments.poisson_experiment import run_poisson_once
from repro.metrics.reporting import format_table


def bench_ablation_cpu_model(benchmark):
    queries = scale_queries()

    def run_all():
        results = {}
        for cpu_model in ("processor-sharing", "fifo"):
            config = dataclasses.replace(TestbedConfig(), cpu_model=cpu_model)
            for spec in (rr_policy(), sr_policy(4)):
                results[(cpu_model, spec.name)] = run_poisson_once(
                    config, spec, load_factor=HIGH_LOAD_FACTOR, num_queries=queries
                )
        return results

    runs = run_once(benchmark, run_all)

    rows = [
        [cpu_model, policy, run.mean_response_time, run.summary.p90]
        for (cpu_model, policy), run in runs.items()
    ]
    table = format_table(
        ["CPU model", "policy", "mean response (s)", "p90 (s)"],
        rows,
        title="Ablation A5: server CPU scheduling model at rho=0.88",
    )
    write_output("ablation_cpu_model", table)

    # Shape check: SR4 beats RR under both CPU models.
    for cpu_model in ("processor-sharing", "fifo"):
        assert (
            runs[(cpu_model, "SR4")].mean_response_time
            < runs[(cpu_model, "RR")].mean_response_time
        )
