"""Figure 5 — CDF of page load time at ρ = 0.61 (light load).

Paper: "CDF of page load time over 20000 queries for the Poisson
workload: RR vs different SRc policies, ρ = 0.61."  At this lighter load
SR16 yields no improvement over RR and SR8 only a small one, while SR4
still provides a substantial improvement and SRdyn matches it.
"""

from __future__ import annotations

from benchmarks.conftest import scale_queries, run_once, write_output
from repro.experiments import figures
from repro.experiments.config import LIGHT_LOAD_FACTOR, TestbedConfig, paper_policy_suite
from repro.experiments.poisson_experiment import run_poisson_once
from repro.metrics.stats import percentile


def bench_figure5_cdf_light_load(benchmark):
    config = TestbedConfig()
    queries = scale_queries()

    def run_all():
        return {
            spec.name: run_poisson_once(
                config, spec, load_factor=LIGHT_LOAD_FACTOR, num_queries=queries
            )
            for spec in paper_policy_suite()
        }

    runs = run_once(benchmark, run_all)

    table = figures.render_figure_cdf(
        runs, title=f"Figure 5: CDF of page load time, rho={LIGHT_LOAD_FACTOR}"
    )
    write_output("figure5_cdf_light_load", table)

    # Shape checks: SR16 is essentially RR at light load (within 15 % on
    # the median); SR4 is no worse than RR.
    rr_median = percentile(runs["RR"].response_times(), 50)
    sr16_median = percentile(runs["SR16"].response_times(), 50)
    sr4_median = percentile(runs["SR4"].response_times(), 50)
    assert abs(sr16_median - rr_median) / rr_median < 0.15
    assert sr4_median <= rr_median * 1.05
