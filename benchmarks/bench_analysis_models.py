"""Ablation A4 — analytic models vs simulation, plus micro-benchmarks.

Two parts:

* a comparison of the supermarket (power-of-d-choices) model's predicted
  improvement against the simulated SRLB improvement across loads, which
  validates that the simulator's load-balancing physics behaves like the
  theory the paper builds on;
* genuine micro-benchmarks (with statistical repetition) of the hot
  inner components: the event engine, the Maglev table and the Service
  Hunting decision path.  These are the pieces whose cost dominates a
  full experiment run.
"""

from __future__ import annotations

from benchmarks.conftest import scale_queries, run_once, write_output
from repro.analysis.power_of_choices import improvement_over_random
from repro.core.agent import ApplicationAgent, StaticLoadView
from repro.core.consistent_hash import MaglevTable
from repro.core.policies import StaticThresholdPolicy
from repro.core.service_hunting import ServiceHuntingProcessor
from repro.experiments.config import TestbedConfig, rr_policy, sr_policy
from repro.experiments.poisson_experiment import run_poisson_once
from repro.metrics.reporting import format_table
from repro.net.addressing import IPv6Address
from repro.net.packet import make_syn
from repro.net.srh import SegmentRoutingHeader
from repro.sim.engine import Simulator


def bench_analysis_supermarket_vs_simulation(benchmark):
    config = TestbedConfig()
    queries = max(1_000, scale_queries() // 2)
    loads = (0.5, 0.7, 0.88)

    def run_all():
        results = {}
        for load in loads:
            rr = run_poisson_once(config, rr_policy(), load_factor=load, num_queries=queries)
            sr = run_poisson_once(config, sr_policy(4), load_factor=load, num_queries=queries)
            results[load] = (rr.mean_response_time, sr.mean_response_time)
        return results

    results = run_once(benchmark, run_all)

    rows = []
    for load, (rr_mean, sr_mean) in results.items():
        simulated = rr_mean / sr_mean
        analytic = improvement_over_random(load, 2)
        rows.append([load, rr_mean, sr_mean, simulated, analytic])
    table = format_table(
        ["rho", "RR mean (s)", "SR4 mean (s)", "simulated speed-up", "analytic speed-up"],
        rows,
        title="Ablation A4: simulated SRLB improvement vs supermarket-model prediction",
    )
    write_output("analysis_supermarket_vs_simulation", table)

    # Shape check: like the analytic model, the simulated improvement
    # grows with the load factor.
    speedups = [rr / sr for rr, sr in (results[load] for load in loads)]
    assert speedups[-1] > speedups[0]


# ----------------------------------------------------------------------
# micro-benchmarks (statistical, many rounds)
# ----------------------------------------------------------------------
def bench_micro_event_engine_throughput(benchmark):
    """Schedule-and-run throughput of the discrete-event engine."""

    def schedule_and_run():
        simulator = Simulator(seed=0)
        for index in range(10_000):
            simulator.schedule_at(index * 1e-4, lambda: None)
        simulator.run()
        return simulator.events_executed

    executed = benchmark(schedule_and_run)
    assert executed == 10_000


def bench_micro_maglev_build_and_lookup(benchmark):
    """Build a Maglev table for 12 backends and perform 10k lookups."""
    backends = [IPv6Address.parse(f"fd00:100::{index:x}") for index in range(1, 13)]

    def build_and_lookup():
        table = MaglevTable(backends, table_size=65_537)
        return sum(1 for index in range(10_000) if table.lookup(f"flow-{index}") is not None)

    hits = benchmark(build_and_lookup)
    assert hits == 10_000


def bench_micro_service_hunting_decision(benchmark):
    """Throughput of the per-packet Service Hunting decision."""
    vip = IPv6Address.parse("fd00:300::1")
    servers = [IPv6Address.parse("fd00:100::1"), IPv6Address.parse("fd00:100::2")]
    client = IPv6Address.parse("fd00:200::1")
    processor = ServiceHuntingProcessor(
        StaticThresholdPolicy(4), ApplicationAgent(StaticLoadView(busy=2, slots=32))
    )

    def decide_many():
        accepted = 0
        for index in range(5_000):
            packet = make_syn(client, vip, 20_000, 80, request_id=index)
            packet.attach_srh(SegmentRoutingHeader.from_traversal(servers + [vip]))
            processor.process(packet)
            accepted += 1
        return accepted

    assert benchmark(decide_many) == 5_000
