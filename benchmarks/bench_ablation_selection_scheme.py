"""Ablation A3 — candidate-selection scheme.

The paper chooses two random candidates; §II-B also mentions consistent
hashing as an alternative selection scheme.  This ablation compares
random selection, consistent hashing (Maglev chains) and deterministic
round-robin, all with the SR4 acceptance policy at heavy load.
"""

from __future__ import annotations

from benchmarks.conftest import scale_queries, run_once, write_output
from repro.experiments.config import HIGH_LOAD_FACTOR, PolicySpec, TestbedConfig
from repro.experiments.poisson_experiment import run_poisson_once
from repro.metrics.reporting import format_table

SCHEMES = (
    ("random", "random-2"),
    ("consistent-hash", "consistent-hash-2"),
    ("round-robin", "round-robin-2"),
)


def bench_ablation_selection_scheme(benchmark):
    config = TestbedConfig()
    queries = scale_queries()

    def run_all():
        results = {}
        for selector, label in SCHEMES:
            spec = PolicySpec(
                name=label,
                acceptance_policy="SR4",
                num_candidates=2,
                selector=selector,
            )
            results[label] = run_poisson_once(
                config, spec, load_factor=HIGH_LOAD_FACTOR, num_queries=queries
            )
        # RR baseline for context.
        results["RR baseline"] = run_poisson_once(
            config,
            PolicySpec(name="RR", acceptance_policy="always", num_candidates=1),
            load_factor=HIGH_LOAD_FACTOR,
            num_queries=queries,
        )
        return results

    runs = run_once(benchmark, run_all)

    rows = [
        [name, run.mean_response_time, run.summary.p90]
        for name, run in runs.items()
    ]
    table = format_table(
        ["selection scheme", "mean response (s)", "p90 (s)"],
        rows,
        title="Ablation A3: candidate-selection scheme at rho=0.88 (SR4 policy)",
    )
    write_output("ablation_selection_scheme", table)

    # Shape check: every two-candidate scheme beats the RR baseline —
    # the benefit comes from the choice, not from the specific scheme.
    baseline = runs["RR baseline"].mean_response_time
    for _, label in SCHEMES:
        assert runs[label].mean_response_time < baseline
