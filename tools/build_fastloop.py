#!/usr/bin/env python
"""Build the optional compiled run loop (``repro.sim._fastloop_c``).

The simulator's inner loop lives in ``src/repro/sim/_fastloop.py``; this
script produces a mypyc-compiled twin under the *different* module name
``_fastloop_c`` so a plain import can never silently shadow the
canonical pure-Python loop.  ``repro.sim.engine`` only looks for the
compiled module when ``REPRO_COMPILED=1`` is set, and falls back to pure
Python when the build is absent.

The build is best-effort by design: when mypyc is not installed (it is
an optional tool, not a runtime dependency) the script prints a notice
and exits 0, so ``make build-fast`` is safe to run anywhere.

Steps:

1. copy ``_fastloop.py`` into a temp dir as ``_fastloop_c.py``, flipping
   its ``COMPILED`` flag to ``True``;
2. run mypyc on the copy;
3. move the resulting extension module next to ``_fastloop.py`` (the
   ``.py`` copy is *not* installed — only the extension, so importing
   ``_fastloop_c`` either gets compiled code or fails cleanly).
"""

from __future__ import annotations

import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SIM_DIR = REPO_ROOT / "src" / "repro" / "sim"
SOURCE = SIM_DIR / "_fastloop.py"


def main() -> int:
    try:
        import mypyc  # noqa: F401
    except ImportError:
        print(
            "build-fast: mypyc is not installed (pip install mypy to enable); "
            "keeping the pure-Python run loop"
        )
        return 0

    text = SOURCE.read_text()
    flipped = text.replace("COMPILED = False", "COMPILED = True", 1)
    if flipped == text:
        print("build-fast: COMPILED flag not found in _fastloop.py", file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory(prefix="fastloop-build-") as tmp:
        work = Path(tmp)
        (work / "_fastloop_c.py").write_text(flipped)
        result = subprocess.run(
            [sys.executable, "-m", "mypyc", "_fastloop_c.py"],
            cwd=work,
        )
        if result.returncode != 0:
            print(
                "build-fast: mypyc failed; keeping the pure-Python run loop",
                file=sys.stderr,
            )
            return result.returncode
        built = sorted(work.glob("_fastloop_c.*.so")) + sorted(
            work.glob("_fastloop_c.*.pyd")
        )
        if not built:
            print(
                "build-fast: mypyc reported success but produced no extension",
                file=sys.stderr,
            )
            return 1
        for extension in built:
            destination = SIM_DIR / extension.name
            shutil.copy2(extension, destination)
            print(f"build-fast: installed {destination.relative_to(REPO_ROOT)}")
    print("build-fast: run benchmarks with REPRO_COMPILED=1 to use the compiled loop")
    return 0


if __name__ == "__main__":
    sys.exit(main())
